"""GPU device catalog — paper Table VII plus the micro-architectural limits
the occupancy and timing models need.

Values are the public NVIDIA specifications for each part.  The paper
evaluates RTX 4090 in depth and extends to GTX 1070 (Pascal), V100 (Volta),
RTX 2080 Ti (Turing), A100 (Ampere) and H100 (Hopper); the catalog covers
all six.  ``query`` mirrors ``cudaGetDeviceProperties`` for the Tree Tuning
algorithm's shared-memory probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GpuModelError

__all__ = ["DeviceSpec", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static properties of one GPU model.

    Attributes mirror ``cudaDeviceProp`` fields where one exists.
    """

    name: str
    architecture: str
    sm_version: int            # compute capability, e.g. 89 for Ada
    num_sms: int
    cuda_cores: int
    base_clock_mhz: int        # paper Table VII uses base clocks
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int      # 32-bit registers
    max_registers_per_thread: int
    shared_mem_per_sm: int     # bytes
    shared_mem_per_block_static: int   # classic 48 KB static limit
    shared_mem_per_block_optin: int    # dynamic (cudaFuncAttributeMaxDynamicSharedMemorySize)
    shared_mem_banks: int
    warp_size: int
    schedulers_per_sm: int     # warp schedulers (issue slots per cycle)
    dram_bandwidth_gbps: float
    l2_cache_bytes: int
    tdp_watts: float

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def clock_hz(self) -> float:
        return self.base_clock_mhz * 1e6

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.num_sms

    @property
    def peak_warp_issue_per_cycle(self) -> int:
        """Warp-instructions issuable per SM per cycle (scheduler count)."""
        return self.schedulers_per_sm

    def query(self) -> dict[str, int]:
        """A ``cudaGetDeviceProperties``-style dict (Tree Tuning's probe)."""
        return {
            "multiProcessorCount": self.num_sms,
            "maxThreadsPerBlock": self.max_threads_per_block,
            "maxThreadsPerMultiProcessor": self.max_threads_per_sm,
            "regsPerMultiprocessor": self.registers_per_sm,
            "sharedMemPerBlock": self.shared_mem_per_block_static,
            "sharedMemPerBlockOptin": self.shared_mem_per_block_optin,
            "sharedMemPerMultiprocessor": self.shared_mem_per_sm,
            "warpSize": self.warp_size,
            "clockRate": self.base_clock_mhz * 1000,  # kHz, as CUDA reports
        }


def _catalog() -> dict[str, DeviceSpec]:
    specs = [
        DeviceSpec(
            name="GTX 1070", architecture="Pascal", sm_version=61,
            num_sms=15, cuda_cores=1920, base_clock_mhz=1506,
            max_threads_per_block=1024, max_threads_per_sm=2048,
            max_blocks_per_sm=32, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=96 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=48 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=256.0, l2_cache_bytes=2 * 1024 * 1024,
            tdp_watts=150.0,
        ),
        DeviceSpec(
            name="V100", architecture="Volta", sm_version=70,
            num_sms=80, cuda_cores=5120, base_clock_mhz=1230,
            max_threads_per_block=1024, max_threads_per_sm=2048,
            max_blocks_per_sm=32, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=96 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=96 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=900.0, l2_cache_bytes=6 * 1024 * 1024,
            tdp_watts=300.0,
        ),
        DeviceSpec(
            name="RTX 2080 Ti", architecture="Turing", sm_version=75,
            num_sms=68, cuda_cores=4352, base_clock_mhz=1350,
            max_threads_per_block=1024, max_threads_per_sm=1024,
            max_blocks_per_sm=16, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=64 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=64 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=616.0, l2_cache_bytes=5_767_168,
            tdp_watts=250.0,
        ),
        DeviceSpec(
            name="A100", architecture="Ampere", sm_version=80,
            num_sms=108, cuda_cores=6912, base_clock_mhz=1095,
            max_threads_per_block=1024, max_threads_per_sm=2048,
            max_blocks_per_sm=32, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=164 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=163 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=1555.0, l2_cache_bytes=40 * 1024 * 1024,
            tdp_watts=400.0,
        ),
        DeviceSpec(
            name="RTX 4090", architecture="Ada", sm_version=89,
            num_sms=128, cuda_cores=16384, base_clock_mhz=2235,
            max_threads_per_block=1024, max_threads_per_sm=1536,
            max_blocks_per_sm=24, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=100 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=99 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=1008.0, l2_cache_bytes=72 * 1024 * 1024,
            tdp_watts=450.0,
        ),
        DeviceSpec(
            name="H100", architecture="Hopper", sm_version=90,
            num_sms=132, cuda_cores=16896, base_clock_mhz=1035,
            max_threads_per_block=1024, max_threads_per_sm=2048,
            max_blocks_per_sm=32, registers_per_sm=65536,
            max_registers_per_thread=255,
            shared_mem_per_sm=228 * 1024,
            shared_mem_per_block_static=48 * 1024,
            shared_mem_per_block_optin=227 * 1024,
            shared_mem_banks=32, warp_size=32, schedulers_per_sm=4,
            dram_bandwidth_gbps=3350.0, l2_cache_bytes=50 * 1024 * 1024,
            tdp_watts=700.0,
        ),
    ]
    return {spec.name: spec for spec in specs}


DEVICES: dict[str, DeviceSpec] = _catalog()

_ALIASES = {
    "rtx4090": "RTX 4090",
    "4090": "RTX 4090",
    "a100": "A100",
    "h100": "H100",
    "v100": "V100",
    "gtx1070": "GTX 1070",
    "1070": "GTX 1070",
    "2080ti": "RTX 2080 Ti",
    "rtx2080ti": "RTX 2080 Ti",
    "pascal": "GTX 1070",
    "volta": "V100",
    "turing": "RTX 2080 Ti",
    "ampere": "A100",
    "ada": "RTX 4090",
    "hopper": "H100",
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name, architecture, or common alias.

    >>> get_device("RTX 4090").num_sms
    128
    >>> get_device("hopper").architecture
    'Hopper'
    """
    if name in DEVICES:
        return DEVICES[name]
    key = name.lower().replace(" ", "").replace("-", "")
    canonical = _ALIASES.get(key)
    if canonical is None:
        known = ", ".join(sorted(DEVICES))
        raise GpuModelError(f"unknown device {name!r}; known: {known}")
    return DEVICES[canonical]
