"""The timing engine: how long a kernel launch takes on a device.

The model is deliberately mechanistic.  For each phase of a block's
workload it computes three candidate bounds and takes the governing one:

* **Issue-throughput bound** — scheduler cycles to issue every instruction
  of all block-resident work, scaled by a latency-hiding factor that grows
  with resident warps (this is where occupancy pays off, and why the PTX
  branch's register savings matter on ``TREE_Sign``/256f).
* **Latency bound** — the dependent-hash critical path of a single thread
  (a WOTS+ chain cannot go faster than its data dependences).
* **DRAM bound** — off-chip traffic over the device bandwidth share (this
  is what HybridME's constant-memory placement reduces).

Shared-memory wavefronts (conflict-inflated, from
:mod:`repro.gpusim.memory`) are charged on the LSU path and added to the
compute bound; ``__syncthreads()`` barriers add a fixed cost each (this is
what FORS Fusion reduces).

All constants live in :class:`repro.gpusim.calibration.Calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .calibration import Calibration, DEFAULT_CALIBRATION
from .compiler import CompiledKernel
from .device import DeviceSpec
from .kernel import KernelWorkload, LaunchConfig, WorkloadPhase
from .occupancy import OccupancyResult, occupancy

__all__ = ["PhaseTiming", "KernelTiming", "TimingEngine"]


@dataclass(frozen=True)
class PhaseTiming:
    """Per-phase cycle accounting for one resident-block group."""

    name: str
    compute_cycles: float
    latency_cycles: float
    memory_cycles: float
    smem_cycles: float
    sync_cycles: float
    governing: str

    @property
    def cycles(self) -> float:
        return (
            max(self.compute_cycles + self.smem_cycles,
                self.latency_cycles, self.memory_cycles)
            + self.sync_cycles
        )


@dataclass(frozen=True)
class KernelTiming:
    """Result of timing one kernel launch."""

    kernel: str
    device: DeviceSpec
    launch: LaunchConfig
    occupancy: OccupancyResult
    waves: int
    time_s: float
    phases: tuple[PhaseTiming, ...]
    achieved_occupancy: float
    compute_throughput_pct: float
    memory_throughput_pct: float

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6


class TimingEngine:
    """Times kernel launches against the analytical model."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calibration = calibration

    # ------------------------------------------------------------------
    def time_kernel(
        self,
        compiled: CompiledKernel,
        workload: KernelWorkload,
        launch: LaunchConfig,
        device: DeviceSpec | None = None,
    ) -> KernelTiming:
        """Execution time (excluding launch overhead) of one launch."""
        device = device or compiled.device
        launch.validate(device)
        occ = occupancy(
            device, launch.threads_per_block,
            compiled.regs_per_thread, launch.smem_per_block,
        )

        # Blocks resident on one SM, given how many the grid can supply.
        supply = math.ceil(launch.grid_blocks / device.num_sms)
        resident = max(1, min(occ.blocks_per_sm, supply))
        active_warps = resident * occ.warps_per_block
        waves = math.ceil(launch.grid_blocks / (resident * device.num_sms))

        cal = self.calibration
        hide = min(
            1.0,
            active_warps
            / (device.schedulers_per_sm * cal.warps_to_hide_latency_per_scheduler),
        )
        issue_rate = device.schedulers_per_sm * cal.issue_efficiency * hide

        phase_timings = [
            self._time_phase(phase, compiled, launch, device, resident, issue_rate)
            for phase in workload.phases
        ]
        cycles_per_wave = sum(pt.cycles for pt in phase_timings)
        total_cycles = waves * cycles_per_wave
        time_s = total_cycles / device.clock_hz

        return KernelTiming(
            kernel=workload.kernel,
            device=device,
            launch=launch,
            occupancy=occ,
            waves=waves,
            time_s=time_s,
            phases=tuple(phase_timings),
            achieved_occupancy=self._achieved_occupancy(
                occ, resident, phase_timings
            ),
            compute_throughput_pct=self._compute_pct(
                compiled, workload, launch, device, time_s
            ),
            memory_throughput_pct=self._memory_pct(
                workload, launch, device, time_s
            ),
        )

    # ------------------------------------------------------------------
    def _time_phase(
        self,
        phase: WorkloadPhase,
        compiled: CompiledKernel,
        launch: LaunchConfig,
        device: DeviceSpec,
        resident: int,
        issue_rate: float,
    ) -> PhaseTiming:
        cal = self.calibration

        # Throughput view: warp-granular issue work for all resident blocks.
        active_warps_phase = max(1, math.ceil(phase.active_threads / device.warp_size))
        packing = (active_warps_phase * device.warp_size) / max(1, phase.active_threads)
        hash_warp_units = phase.hash_total / device.warp_size * packing
        issue_cycles = hash_warp_units * compiled.issue_cycles_per_hash
        compute = issue_cycles * resident / issue_rate

        # Latency view: one thread's dependent-hash chain.
        latency = phase.hash_depth * compiled.dependent_cycles_per_hash

        # Shared-memory wavefronts through the LSU.
        smem = (
            (phase.smem_load_passes + phase.smem_store_passes)
            * resident
            / cal.smem_wavefronts_per_cycle
        )

        # DRAM: the device bandwidth divided evenly across SMs.
        bytes_per_sm_cycle = (
            device.dram_bandwidth_gbps * 1e9 / device.clock_hz / device.num_sms
        )
        memory = phase.global_bytes * resident / bytes_per_sm_cycle
        if phase.global_bytes > 0:
            # Exposed latency when occupancy is too thin to hide DRAM trips.
            warps = resident * max(1, launch.threads_per_block // device.warp_size)
            exposure = max(
                0.0,
                1.0
                - warps
                / (device.schedulers_per_sm * cal.warps_to_hide_latency_per_scheduler),
            )
            memory += exposure * cal.dram_latency_cycles

        sync = phase.syncs * cal.sync_cycles

        candidates = {
            "compute": compute + smem,
            "latency": latency,
            "memory": memory,
        }
        governing = max(candidates, key=candidates.get)
        return PhaseTiming(
            name=phase.name,
            compute_cycles=compute,
            latency_cycles=latency,
            memory_cycles=memory,
            smem_cycles=smem,
            sync_cycles=sync,
            governing=governing,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _achieved_occupancy(
        occ: OccupancyResult, resident: int, phases: list[PhaseTiming]
    ) -> float:
        """Theoretical occupancy derated by the issue-busy fraction.

        When phases are latency- or sync-bound the resident warps sit
        stalled, which is what Nsight's achieved ("warp") occupancy
        captures relative to the theoretical bound.
        """
        total = sum(pt.cycles for pt in phases)
        if total <= 0:
            return 0.0
        busy = sum(pt.compute_cycles + pt.smem_cycles for pt in phases)
        fraction = min(1.0, busy / total)
        theoretical = (resident * occ.warps_per_block) / occ.max_warps
        return theoretical * max(fraction, 0.05)

    def _compute_pct(
        self,
        compiled: CompiledKernel,
        workload: KernelWorkload,
        launch: LaunchConfig,
        device: DeviceSpec,
        time_s: float,
    ) -> float:
        if time_s <= 0:
            return 0.0
        total_issue = sum(
            phase.hash_total / device.warp_size * compiled.issue_cycles_per_hash
            for phase in workload.phases
        ) * launch.grid_blocks
        peak = time_s * device.clock_hz * device.schedulers_per_sm * device.num_sms
        return min(100.0, 100.0 * total_issue / peak)

    @staticmethod
    def _memory_pct(
        workload: KernelWorkload,
        launch: LaunchConfig,
        device: DeviceSpec,
        time_s: float,
    ) -> float:
        if time_s <= 0:
            return 0.0
        total_bytes = workload.total_global_bytes() * launch.grid_blocks
        peak = time_s * device.dram_bandwidth_gbps * 1e9
        return min(100.0, 100.0 * total_bytes / peak)
