"""Task graphs — the CUDA Graph analog.

A :class:`TaskGraph` is a DAG of kernel nodes.  ``instantiate`` freezes it
into a :class:`GraphExec` (validating acyclicity, as ``cudaGraphInstantiate``
does), and ``launch`` replays the whole DAG onto a
:class:`~repro.gpusim.stream.Timeline` with *one* graph-launch overhead plus
a tiny per-node residual instead of a full host launch per kernel — the
mechanism behind the paper's up-to-221x kernel-launch-latency reduction
(Figure 12; graph instantiation time is excluded there, and is likewise not
charged to the timeline here).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .calibration import Calibration, DEFAULT_CALIBRATION
from .stream import LaunchRecord, Timeline

__all__ = ["GraphNode", "TaskGraph", "GraphExec"]


@dataclass(frozen=True)
class GraphNode:
    """One kernel node in a task graph."""

    node_id: int
    name: str
    work_s: float
    demand: float
    deps: tuple[int, ...]


class TaskGraph:
    """Mutable task-graph builder."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._nodes: list[GraphNode] = []

    def add_kernel(
        self,
        name: str,
        work_s: float,
        demand: float = 1.0,
        deps: tuple[GraphNode, ...] | list[GraphNode] = (),
    ) -> GraphNode:
        """Add a kernel node; *deps* must be nodes of this graph."""
        for dep in deps:
            if dep.node_id >= len(self._nodes) or self._nodes[dep.node_id] is not dep:
                raise GraphError(f"dependency {dep.name!r} is not a node of {self.name!r}")
        node = GraphNode(
            node_id=len(self._nodes),
            name=name,
            work_s=work_s,
            demand=demand,
            deps=tuple(dep.node_id for dep in deps),
        )
        self._nodes.append(node)
        return node

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def instantiate(self) -> "GraphExec":
        """Freeze into an executable graph (validates topology)."""
        order = self._topo_order()
        return GraphExec(self.name, tuple(self._nodes), tuple(order))

    def _topo_order(self) -> list[int]:
        indegree = [len(node.deps) for node in self._nodes]
        children: dict[int, list[int]] = {i: [] for i in range(len(self._nodes))}
        for node in self._nodes:
            for dep in node.deps:
                children[dep].append(node.node_id)
        frontier = [i for i, deg in enumerate(indegree) if deg == 0]
        order: list[int] = []
        while frontier:
            nid = frontier.pop()
            order.append(nid)
            for child in children[nid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order


@dataclass(frozen=True)
class GraphExec:
    """An instantiated task graph, launchable many times."""

    name: str
    nodes: tuple[GraphNode, ...]
    topo_order: tuple[int, ...]

    def launch(
        self,
        timeline: Timeline,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> list[LaunchRecord]:
        """Replay the DAG onto *timeline* with graph-launch overheads.

        Every node runs on its own anonymous stream so only the explicit
        graph dependences order execution, exactly as CUDA graphs behave.
        """
        records: dict[int, LaunchRecord] = {}
        first = True
        for nid in self.topo_order:
            node = self.nodes[nid]
            overhead = calibration.graph_node_us * 1e-6
            if first:
                overhead += calibration.graph_launch_us * 1e-6
                first = False
            records[nid] = timeline.launch(
                stream=timeline.stream(f"{self.name}.n{nid}"),
                name=node.name,
                work_s=node.work_s,
                demand=node.demand,
                deps=tuple(records[d] for d in node.deps),
                overhead_s=overhead,
            )
        return [records[nid] for nid in range(len(self.nodes))]
