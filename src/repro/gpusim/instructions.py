"""Instruction classes and per-architecture timing properties.

The compiler model (:mod:`repro.gpusim.compiler`) lowers the measured
SHA-256 operation profile into a mix over these classes.  Throughput and
latency values follow the published instruction tables and micro-benchmark
literature for NVIDIA parts; what matters for the reproduction is their
*relative* structure:

* ``PRMT`` has single-instruction byte-permute semantics but lower
  throughput than simple shifts (it issues on a reduced-rate path) — the
  trade-off paper §III-C.1 describes.
* ``LOP3`` fuses up to two logical ops; ``IADD3`` fuses adds; funnel shifts
  (``SHF``) implement rotates in one instruction on Volta+ but two on
  Pascal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InstructionClass", "InstructionTimings", "InstructionMix"]


# Canonical instruction classes used by the mixes.
InstructionClass = str

SHF = "SHF"       # funnel shift / rotate
SHL = "SHL"       # plain shift
LOP3 = "LOP3"     # 3-input logic
IADD3 = "IADD3"   # 3-input add
MAD = "MAD"       # multiply-add kept live by the auxiliary-operand trick
PRMT = "PRMT"     # byte permutation
LDS = "LDS"       # shared-memory load
STS = "STS"       # shared-memory store
LDG = "LDG"       # global load
LDC = "LDC"       # constant load (broadcast)
MISC = "MISC"     # control flow, address math, moves


@dataclass(frozen=True)
class InstructionTimings:
    """Issue cost (reciprocal throughput, cycles/instr per scheduler) and
    dependent latency (cycles) for each instruction class on one device.

    ``for_device`` derives the table from the SM version: the only
    architecture-dependent quirks the model needs are Pascal's two-
    instruction rotate and the uniform 4-cycle ALU pipe on Volta+.
    """

    issue_cost: dict[InstructionClass, float]
    latency: dict[InstructionClass, float]

    @classmethod
    def for_device(cls, sm_version: int) -> "InstructionTimings":
        pre_volta = sm_version < 70
        issue = {
            SHF: 2.0 if pre_volta else 1.0,
            SHL: 1.0,
            LOP3: 1.0,
            IADD3: 1.0,
            MAD: 2.0 if pre_volta else 1.0,
            PRMT: 2.0,            # quarter-rate byte path on most parts
            LDS: 1.0,
            STS: 1.0,
            LDG: 2.0,
            LDC: 0.5,             # broadcast amortizes across the warp
            MISC: 1.0,
        }
        lat = {
            SHF: 6.0 if pre_volta else 4.0,
            SHL: 6.0 if pre_volta else 4.0,
            LOP3: 6.0 if pre_volta else 4.0,
            IADD3: 6.0 if pre_volta else 4.0,
            MAD: 6.0 if pre_volta else 5.0,
            PRMT: 8.0 if pre_volta else 6.0,
            LDS: 22.0,
            STS: 22.0,
            LDG: 300.0,
            LDC: 8.0,
            MISC: 6.0 if pre_volta else 4.0,
        }
        return cls(issue_cost=issue, latency=lat)


@dataclass
class InstructionMix:
    """A weighted bag of instructions (per one SHA-256 compression call,
    or any other unit the caller chooses).
    """

    counts: dict[InstructionClass, float] = field(default_factory=dict)

    def add(self, cls_: InstructionClass, count: float) -> "InstructionMix":
        self.counts[cls_] = self.counts.get(cls_, 0.0) + count
        return self

    def total(self) -> float:
        return sum(self.counts.values())

    def issue_cycles(self, timings: InstructionTimings) -> float:
        """Scheduler cycles to *issue* the whole mix (throughput view)."""
        return sum(
            count * timings.issue_cost[cls_]
            for cls_, count in self.counts.items()
        )

    def dependent_cycles(
        self,
        timings: InstructionTimings,
        ilp: float,
        exclude: frozenset[InstructionClass] = frozenset({"MISC"}),
    ) -> float:
        """Cycles for one thread to *execute* the mix as a dependent chain
        softened by instruction-level parallelism *ilp* (latency view).

        ``exclude`` drops instruction classes that are off the critical
        dependence path (by default the MISC address-math/bookkeeping
        overhead, which interleaves with the hash rounds).
        """
        weighted = sum(
            count * timings.latency[cls_]
            for cls_, count in self.counts.items()
            if cls_ not in exclude
        )
        return weighted / max(ilp, 1.0)

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(
            {cls_: count * factor for cls_, count in self.counts.items()}
        )

    def merged(self, other: "InstructionMix") -> "InstructionMix":
        out = InstructionMix(dict(self.counts))
        for cls_, count in other.counts.items():
            out.add(cls_, count)
        return out
