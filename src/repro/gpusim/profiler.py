"""Nsight-style per-kernel profiles.

Bundles a :class:`~repro.gpusim.engine.KernelTiming` with the compiled
kernel's static properties into the metric set the paper reports (warp
occupancy, theoretical occupancy, registers per thread, compute and memory
throughput) so benchmark tables can print the same columns as Tables III
and VIII.
"""

from __future__ import annotations

from dataclasses import dataclass

from .compiler import CompiledKernel
from .device import DeviceSpec
from .engine import KernelTiming, TimingEngine
from .kernel import KernelWorkload, LaunchConfig

__all__ = ["KernelProfile", "profile_launch"]


@dataclass(frozen=True)
class KernelProfile:
    """The Nsight-like metric set for one kernel launch."""

    kernel: str
    device: DeviceSpec
    branch: str
    registers_per_thread: int
    theoretical_occupancy_pct: float
    warp_occupancy_pct: float
    compute_throughput_pct: float
    memory_throughput_pct: float
    time_ms: float
    timing: KernelTiming

    def row(self) -> dict[str, float | str]:
        """A flat dict suitable for table printing."""
        return {
            "kernel": self.kernel,
            "branch": self.branch,
            "regs/thread": self.registers_per_thread,
            "theoretical occupancy %": round(self.theoretical_occupancy_pct, 2),
            "warp occupancy %": round(self.warp_occupancy_pct, 2),
            "compute throughput %": round(self.compute_throughput_pct, 2),
            "memory throughput %": round(self.memory_throughput_pct, 2),
            "time ms": round(self.time_ms, 4),
        }


def profile_launch(
    engine: TimingEngine,
    compiled: CompiledKernel,
    workload: KernelWorkload,
    launch: LaunchConfig,
) -> KernelProfile:
    """Time a launch and package the profile."""
    timing = engine.time_kernel(compiled, workload, launch)
    return KernelProfile(
        kernel=workload.kernel,
        device=compiled.device,
        branch=compiled.branch.value,
        registers_per_thread=compiled.regs_per_thread,
        theoretical_occupancy_pct=100.0 * timing.occupancy.theoretical,
        warp_occupancy_pct=100.0 * timing.achieved_occupancy,
        compute_throughput_pct=timing.compute_throughput_pct,
        memory_throughput_pct=timing.memory_throughput_pct,
        time_ms=timing.time_ms,
        timing=timing,
    )
