"""The periodic digest/audit job: replay the log, trust nothing.

:func:`run_audit` re-derives everything a :class:`~.service.LedgerService`
ever acknowledged, from the on-disk bytes alone:

1. **Entry signatures** — every entry's batch signature re-verifies
   under the log tenant's public key (the first failure pinpoints the
   first corrupted entry index).
2. **Tree heads** — every sealed checkpoint's root is recomputed from
   the entries it covers and compared byte-for-byte, and each
   checkpoint must chain (``prev_root`` equals the previous sealed
   root, consistency proof included).
3. **Checkpoint signatures** — each signed tree head re-verifies; in
   deterministic mode the audit additionally *re-signs* every
   checkpoint body with the reference scheme and byte-compares, the
   same differential check the conformance oracle applies
   (``ledger:audit`` path), so a checkpoint that verifies but was not
   produced by the reference pipeline still fails.

The result is a JSON-serializable digest report.  ``ok`` is the overall
verdict; ``first_bad_index`` names the first entry (or checkpoint
boundary) that broke, which is what the CLI exit path reports.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import LedgerError
from ..service.keystore import Keystore
from ..sphincs.signer import Sphincs
from .merkle import EMPTY_ROOT, MerkleLog, verify_consistency_path
from .service import CHECKPOINT_DIR, Checkpoint, decode_entry

__all__ = ["run_audit"]


def _load_checkpoints(root: Path) -> list[Checkpoint]:
    checkpoints = []
    for path in sorted((root / CHECKPOINT_DIR).glob("*.json")):
        try:
            checkpoints.append(
                Checkpoint.from_dict(json.loads(path.read_text())))
        except Exception as exc:  # noqa: BLE001 — report, keep auditing
            raise LedgerError(
                f"corrupt checkpoint {path.name}: {exc}") from exc
    return sorted(checkpoints, key=lambda c: c.size)


def run_audit(root: str | Path, keystore: Keystore, *,
              tenant: str = "ledger", key: str = "default",
              deterministic: bool = False) -> dict:
    """Replay the log at *root* and return the digest report.

    *keystore* supplies the log tenant's key pair: the public half
    verifies entries and checkpoints; with ``deterministic=True`` the
    secret half re-signs each checkpoint body on the reference scheme
    for the byte-compare cross-check.  Never raises for integrity
    failures — they land in the report (``ok: false`` plus
    ``first_bad_index`` / ``problems``); only setup errors (missing
    directory, unknown tenant) raise.
    """
    root = Path(root)
    if not root.is_dir():
        raise LedgerError(f"no ledger directory at {root}")
    keys, params_name = keystore.resolve(tenant, key)
    scheme = Sphincs(params_name, deterministic=deterministic)
    checkpoints = _load_checkpoints(root)
    log = MerkleLog(root)  # untruncated: audit sees the raw segment tail
    problems: list[str] = []
    first_bad: int | None = None
    first_weak: int | None = None

    def flag(index: int | None, message: str, weak: bool = False) -> None:
        # Entry-level findings pinpoint the corrupted index exactly;
        # checkpoint-level ("weak") findings only know the boundary of
        # the covered range, so they name an index only when no entry
        # finding already has.
        nonlocal first_bad, first_weak
        problems.append(message)
        if index is None:
            return
        if weak:
            if first_weak is None or index < first_weak:
                first_weak = index
        elif first_bad is None or index < first_bad:
            first_bad = index

    covered = checkpoints[-1].size if checkpoints else 0
    if covered > log.size:
        flag(log.size, f"checkpoint covers {covered} entries but only "
                       f"{log.size} are on disk")
        covered = log.size

    # 1. Every covered entry's batch signature re-verifies.
    entries_verified = 0
    for index in range(covered):
        try:
            payload, signature = decode_entry(log.entry(index))
        except LedgerError as exc:
            flag(index, f"entry {index}: {exc}")
            continue
        if scheme.verify(payload, signature, keys.public):
            entries_verified += 1
        else:
            flag(index, f"entry {index}: batch signature does not verify")

    # 2 + 3. Every checkpoint's recomputed root, chain link, signature,
    # and (deterministic) reference re-sign.
    checkpoints_verified = 0
    matched = 0
    prev_size, prev_root = 0, EMPTY_ROOT
    for checkpoint in checkpoints:
        ok = True
        if checkpoint.size > log.size:
            flag(log.size,
                 f"checkpoint {checkpoint.size}: covers more entries "
                 f"than the segments hold ({log.size})", weak=True)
            continue
        recomputed = log.root_hash(checkpoint.size)
        if recomputed != checkpoint.root:
            ok = False
            flag(prev_size,
                 f"checkpoint {checkpoint.size}: recomputed root "
                 f"{recomputed.hex()[:16]}... does not match the sealed "
                 f"root {checkpoint.root.hex()[:16]}...", weak=True)
        if checkpoint.prev_root != prev_root:
            ok = False
            flag(prev_size,
                 f"checkpoint {checkpoint.size}: prev_root does not "
                 f"chain from the previous sealed head ({prev_size})",
                 weak=True)
        try:
            path = log.consistency_path(prev_size, checkpoint.size)
            if not verify_consistency_path(
                    prev_size, prev_root, checkpoint.size, recomputed,
                    path):
                ok = False
                flag(prev_size,
                     f"checkpoint {checkpoint.size}: consistency proof "
                     f"from {prev_size} does not verify", weak=True)
        except LedgerError as exc:
            ok = False
            flag(prev_size,
                 f"checkpoint {checkpoint.size}: consistency replay "
                 f"failed: {exc}", weak=True)
        if not scheme.verify(checkpoint.body, checkpoint.signature,
                             keys.public):
            ok = False
            flag(prev_size,
                 f"checkpoint {checkpoint.size}: tree-head signature "
                 "does not verify", weak=True)
        if deterministic:
            # The differential cross-check: the reference scheme signing
            # the same body must reproduce the sealed signature byte for
            # byte (deterministic mode pins the randomizer).
            reference = scheme.sign(checkpoint.body, keys)
            if reference == checkpoint.signature:
                matched += 1
            else:
                ok = False
                flag(prev_size,
                     f"checkpoint {checkpoint.size}: signature diverges "
                     "from the reference scheme (differential check)",
                     weak=True)
        if ok:
            checkpoints_verified += 1
        prev_size, prev_root = checkpoint.size, checkpoint.root
    return {
        "root": str(root),
        "tenant": tenant, "key": key, "params": params_name,
        "entries": log.size,
        "entries_covered": covered,
        "entries_uncovered": log.size - covered,  # never acknowledged
        "entries_verified": entries_verified,
        "checkpoints": len(checkpoints),
        "checkpoints_verified": checkpoints_verified,
        "deterministic": deterministic,
        "signatures_matched": matched if deterministic else None,
        "ok": not problems,
        "first_bad_index": first_bad if first_bad is not None else first_weak,
        "problems": problems,
    }

