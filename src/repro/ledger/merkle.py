"""The append-only Merkle log: hashing, proofs, persisted segments.

:class:`MerkleLog` keeps an ordered list of opaque entry blobs and the
RFC 6962-shaped hash tree over them — domain-separated leaf hashing
(``H(0x00 || entry)``) and interior nodes (``H(0x01 || left || right)``)
over SHA-256, with the standard largest-power-of-two-left split, so the
tree head for any prefix size is a pure function of the entries and
every proof algorithm below matches the Certificate Transparency ones
bit for bit.

Persistence follows the sharded keystore's storage conventions
(:mod:`repro.service.keystore`): every write lands in a ``.tmp``
sibling first and is atomically renamed over the live name, with an
``fsync`` before the rename (the log is an audit trail — a checkpoint
must never point at entry bytes the disk has not accepted).  Each
sealed batch is one immutable segment file under ``segments/``, named
by the index of its first entry, so a crash can only ever lose *whole
un-acked batches*, never tear one.

The proof helpers (:func:`root_from_inclusion_path`,
:func:`verify_consistency_path`) are pure functions over hashes so
clients can verify proofs without constructing a log — the typed
facade's ``verify_inclusion`` builds on them.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from pathlib import Path

from ..errors import LedgerError

__all__ = [
    "EMPTY_ROOT", "MerkleLog", "leaf_hash", "node_hash",
    "root_from_inclusion_path", "verify_consistency_path",
]

#: Segment files live here under the log root, one per sealed batch.
SEGMENT_DIR = "segments"
#: Width of the zero-padded start index in a segment file name: enough
#: for 10^12 entries, and lexicographic order == append order.
_INDEX_WIDTH = 12

#: The tree head of an empty log (RFC 6962: the hash of the empty string).
EMPTY_ROOT = hashlib.sha256(b"").digest()


def leaf_hash(entry: bytes) -> bytes:
    """``H(0x00 || entry)`` — domain-separated from interior nodes."""
    return hashlib.sha256(b"\x00" + entry).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """``H(0x01 || left || right)`` for one interior node."""
    return hashlib.sha256(b"\x01" + left + right).digest()


def _split(n: int) -> int:
    """The largest power of two strictly less than *n* (n >= 2)."""
    k = 1 << (n.bit_length() - 1)
    return k >> 1 if k == n else k


def _subtree_root(hashes: list[bytes], lo: int, hi: int) -> bytes:
    n = hi - lo
    if n == 0:
        return EMPTY_ROOT
    if n == 1:
        return hashes[lo]
    k = _split(n)
    return node_hash(_subtree_root(hashes, lo, lo + k),
                     _subtree_root(hashes, lo + k, hi))


def root_from_inclusion_path(index: int, size: int, leaf: bytes,
                             path: list[bytes]) -> bytes:
    """Recompute the tree head an inclusion proof commits to.

    *leaf* is the already-hashed leaf (:func:`leaf_hash` of the entry);
    *path* is bottom-up sibling hashes for entry *index* in a tree of
    *size* entries.  Returns the implied root; the caller compares it to
    a trusted tree head.  Raises :class:`LedgerError` when the path
    length cannot match ``(index, size)`` — a malformed proof must never
    "verify" by accident.
    """
    if not 0 <= index < size:
        raise LedgerError(
            f"inclusion index {index} outside a tree of {size} entries")
    fn, sn = index, size - 1
    result = leaf
    for sibling in path:
        if sn == 0:
            raise LedgerError(
                f"inclusion path for index {index}/{size} is too long")
        if fn & 1 or fn == sn:
            result = node_hash(sibling, result)
            if not fn & 1:
                while True:
                    fn >>= 1
                    sn >>= 1
                    if fn & 1 or fn == 0:
                        break
        else:
            result = node_hash(result, sibling)
        fn >>= 1
        sn >>= 1
    if sn != 0:
        raise LedgerError(
            f"inclusion path for index {index}/{size} is too short")
    return result


def verify_consistency_path(old_size: int, old_root: bytes,
                            new_size: int, new_root: bytes,
                            path: list[bytes]) -> bool:
    """Whether *path* proves the *old* tree head is a prefix of the new.

    The RFC 6962 consistency check: ``True`` iff the proof reconstructs
    both tree heads.  Malformed proofs (wrong length for the size pair)
    raise :class:`LedgerError` rather than returning ``False``, so
    callers can distinguish "the log forked" from "the proof is junk".
    """
    if old_size > new_size:
        raise LedgerError(
            f"consistency sizes must not shrink: {old_size} > {new_size}")
    if old_size == new_size:
        if path:
            raise LedgerError("equal-size consistency proof must be empty")
        return old_root == new_root
    if old_size == 0:
        if path:
            raise LedgerError("empty-log consistency proof must be empty")
        return old_root == EMPTY_ROOT
    hashes = list(path)
    if old_size & (old_size - 1) == 0:  # old tree is a complete subtree
        hashes.insert(0, old_root)
    if not hashes:
        raise LedgerError("consistency proof is empty")
    fn, sn = old_size - 1, new_size - 1
    while fn & 1:
        fn >>= 1
        sn >>= 1
    old_result = new_result = hashes[0]
    for sibling in hashes[1:]:
        if sn == 0:
            raise LedgerError(
                f"consistency path for {old_size}->{new_size} is too long")
        if fn & 1 or fn == sn:
            old_result = node_hash(sibling, old_result)
            new_result = node_hash(sibling, new_result)
            while fn != 0 and not fn & 1:
                fn >>= 1
                sn >>= 1
        else:
            new_result = node_hash(new_result, sibling)
        fn >>= 1
        sn >>= 1
    if sn != 0:
        raise LedgerError(
            f"consistency path for {old_size}->{new_size} is too short")
    return old_result == old_root and new_result == new_root


class MerkleLog:
    """Append-only entry store plus the Merkle tree over it.

    Parameters
    ----------
    root:
        Log directory (``None`` = memory-only).  Existing segments are
        loaded in append order; *trusted_size* truncates entries beyond
        the last sealed checkpoint — a segment that landed on disk but
        whose checkpoint write never did was never acknowledged, so it
        must not resurrect.
    """

    def __init__(self, root: str | Path | None = None, *,
                 trusted_size: int | None = None):
        self.root = Path(root) if root is not None else None
        self._entries: list[bytes] = []
        self._hashes: list[bytes] = []
        if self.root is not None:
            (self.root / SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
            self._load(trusted_size)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> bytes:
        if not 0 <= index < len(self._entries):
            raise LedgerError(
                f"unknown entry index {index} (log holds "
                f"{len(self._entries)} entries)")
        return self._entries[index]

    def entry_hash(self, index: int) -> bytes:
        self.entry(index)  # bounds check with the shared message
        return self._hashes[index]

    def root_hash(self, size: int | None = None) -> bytes:
        """The tree head over the first *size* entries (default: all)."""
        if size is None:
            size = len(self._entries)
        if not 0 <= size <= len(self._entries):
            raise LedgerError(
                f"no tree head at size {size} (log holds "
                f"{len(self._entries)} entries)")
        return _subtree_root(self._hashes, 0, size)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def inclusion_path(self, index: int, size: int | None = None
                       ) -> list[bytes]:
        """Bottom-up sibling hashes proving entry *index* is in the
        first-*size* tree (RFC 6962 audit path)."""
        if size is None:
            size = len(self._entries)
        if not 0 <= size <= len(self._entries):
            raise LedgerError(
                f"no tree of size {size} (log holds "
                f"{len(self._entries)} entries)")
        if not 0 <= index < size:
            raise LedgerError(
                f"unknown entry index {index} in a tree of {size} entries")

        def walk(target: int, lo: int, hi: int) -> list[bytes]:
            if hi - lo <= 1:
                return []
            k = _split(hi - lo)
            if target < lo + k:
                return walk(target, lo, lo + k) + [
                    _subtree_root(self._hashes, lo + k, hi)]
            return walk(target, lo + k, hi) + [
                _subtree_root(self._hashes, lo, lo + k)]

        return walk(index, 0, size)

    def consistency_path(self, old_size: int,
                         new_size: int | None = None) -> list[bytes]:
        """The RFC 6962 proof that the *old_size* tree head is a prefix
        of the *new_size* one."""
        if new_size is None:
            new_size = len(self._entries)
        if not 0 <= old_size <= new_size <= len(self._entries):
            raise LedgerError(
                f"no consistency path {old_size}->{new_size} (log holds "
                f"{len(self._entries)} entries)")
        if old_size == new_size or old_size == 0:
            return []

        def walk(m: int, lo: int, hi: int, complete: bool) -> list[bytes]:
            n = hi - lo
            if m == n:
                return [] if complete else [
                    _subtree_root(self._hashes, lo, hi)]
            k = _split(n)
            if m <= k:
                return walk(m, lo, lo + k, complete) + [
                    _subtree_root(self._hashes, lo + k, hi)]
            return walk(m - k, lo + k, hi, False) + [
                _subtree_root(self._hashes, lo, lo + k)]

        return walk(old_size, 0, new_size, True)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def preview(self, entries: list[bytes]) -> tuple[int, bytes]:
        """``(new_size, new_root)`` as if *entries* were appended.

        Pure: nothing is mutated or written.  The seal path signs this
        candidate tree head *first* and only commits entries once the
        signature exists, so a signing failure leaves the log untouched.
        """
        hashes = self._hashes + [leaf_hash(entry) for entry in entries]
        return len(hashes), _subtree_root(hashes, 0, len(hashes))

    def append(self, entries: list[bytes]) -> int:
        """Append *entries* as one sealed batch; returns the start index.

        Disk-backed logs persist the batch as one segment file before
        the in-memory tree advances — fsync-then-rename, so a crash
        leaves either the whole segment or none of it.
        """
        if not entries:
            raise LedgerError("cannot append an empty batch")
        start = len(self._entries)
        if self.root is not None:
            self._write_segment(start, entries)
        self._entries.extend(entries)
        self._hashes.extend(leaf_hash(entry) for entry in entries)
        return start

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _segment_path(self, start: int) -> Path:
        assert self.root is not None
        return self.root / SEGMENT_DIR / f"{start:0{_INDEX_WIDTH}d}.seg"

    def _write_segment(self, start: int, entries: list[bytes]) -> None:
        path = self._segment_path(start)
        tmp = path.with_name(path.name + ".tmp")
        payload = json.dumps({
            "start": start,
            "entries": [base64.b64encode(entry).decode("ascii")
                        for entry in entries],
        }, separators=(",", ":")) + "\n"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)

    def _load(self, trusted_size: int | None) -> None:
        assert self.root is not None
        entries: list[bytes] = []
        for path in sorted((self.root / SEGMENT_DIR).glob("*.seg")):
            try:
                record = json.loads(path.read_text())
                start = record["start"]
                blobs = [base64.b64decode(item, validate=True)
                         for item in record["entries"]]
            except (ValueError, KeyError, TypeError) as exc:
                raise LedgerError(
                    f"corrupt segment {path.name}: {exc}") from exc
            if start != len(entries):
                raise LedgerError(
                    f"segment {path.name} starts at {start} but the log "
                    f"holds {len(entries)} entries — a segment is missing "
                    "or duplicated")
            entries.extend(blobs)
        if trusted_size is not None:
            if trusted_size > len(entries):
                raise LedgerError(
                    f"checkpoint covers {trusted_size} entries but the "
                    f"segments hold only {len(entries)} — entry data is "
                    "missing")
            # Beyond the last checkpoint nothing was ever acknowledged:
            # drop the tail (the next seal rewrites that segment name).
            entries = entries[:trusted_size]
        self._entries = entries
        self._hashes = [leaf_hash(entry) for entry in entries]

    def __repr__(self) -> str:
        where = str(self.root) if self.root is not None else "memory"
        return f"<MerkleLog size={self.size} root_dir={where}>"
