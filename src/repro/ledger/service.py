"""The transparency-log pipeline: ingest, batch-sign, checkpoint, serve.

:class:`LedgerService` turns a stream of opaque event payloads into an
append-only, signed :class:`~repro.ledger.merkle.MerkleLog`:

1. **Ingest** — ``await ledger.append(payload)`` parks the event on the
   pending batch (the same deadline-batching idea as the signing
   service: first arrival starts a ``max_wait_ms`` window, a full batch
   seals immediately).
2. **Batch-sign** — the pending payloads go through the typed facade's
   ``sign_many`` in one call, on *any* transport (local, pooled, tcp,
   cluster), so the ledger exercises whatever tier it is pointed at.
3. **Checkpoint** — the batch's candidate tree head is signed (one
   ``sign`` call) *before* anything is committed; only then do the
   entries land on disk as one segment and the signed checkpoint as one
   checkpoint file, both fsync-then-rename.

The ordering is the crash-safety argument for the pipeline's core
invariant — **no accepted-but-unverifiable entries**: an append is
acknowledged only after its entries and a checkpoint covering them are
durable, so every acknowledged receipt can produce an inclusion proof
against a signed tree head; every failure before that point surfaces to
the caller as the typed error the signing tier raised.  A crash between
the segment write and the checkpoint write leaves an *unacknowledged*
tail, which reload truncates.

Serving rides the existing stack: ``ledger_registry()`` in
:mod:`repro.service.verbs` adds the ``log-append`` / ``log-proof`` /
``log-checkpoint`` verbs, and :class:`LedgerServer` below is a stock
:class:`~repro.service.server.SigningServer` carrying a ledger, so one
port serves both signing and the log (v2 JSON lines and v3 frames,
negotiated by ``hello`` exactly like every other verb).
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import LedgerError, ProtocolError
from ..obs.trace import Tracer, current_trace, start_trace, use_trace
from ..service.server import SigningServer, SigningService
from .merkle import EMPTY_ROOT, MerkleLog, leaf_hash

__all__ = ["AppendReceipt", "Checkpoint", "InclusionProof", "LedgerServer",
           "LedgerService", "checkpoint_body", "decode_entry",
           "encode_entry"]

#: Checkpoint files live here under the log root, one per sealed size.
CHECKPOINT_DIR = "checkpoints"
_INDEX_WIDTH = 12

#: Most pending appends one seal consumes (sign_many chunks internally,
#: so this bounds checkpoint cadence, not wire frames).
MAX_SEAL_BATCH = 64


def checkpoint_body(log_id: str, size: int, root: bytes,
                    prev_root: bytes) -> bytes:
    """The canonical byte string a signed tree head signs.

    Deterministic and self-describing (origin line first, one field per
    line), so the differential oracle can byte-compare a checkpoint
    signature against the reference scheme signing the same body.
    """
    return (f"repro-ledger-checkpoint/v1\n"
            f"origin:{log_id}\n"
            f"size:{size}\n"
            f"root:{root.hex()}\n"
            f"prev:{prev_root.hex()}\n").encode("utf-8")


def encode_entry(payload: bytes, signature: bytes) -> bytes:
    """One log entry blob: the event payload plus its batch signature.

    The signature is *inside* the leaf, so inclusion proofs cover it —
    a swapped signature changes the leaf hash and breaks the proof.
    """
    return len(payload).to_bytes(4, "big") + payload + signature


def decode_entry(blob: bytes) -> tuple[bytes, bytes]:
    """``entry blob -> (payload, signature)``; raises on truncation."""
    if len(blob) < 4:
        raise LedgerError(f"entry blob of {len(blob)} bytes has no header")
    length = int.from_bytes(blob[:4], "big")
    if len(blob) < 4 + length:
        raise LedgerError(
            f"entry blob truncated: payload wants {length} bytes, "
            f"{len(blob) - 4} present")
    return bytes(blob[4:4 + length]), bytes(blob[4 + length:])


@dataclass(frozen=True)
class Checkpoint:
    """One signed tree head: ``signature`` covers :attr:`body`."""

    log_id: str
    size: int
    root: bytes
    prev_root: bytes
    signature: bytes
    params: str
    tenant: str
    key: str

    @property
    def body(self) -> bytes:
        """The signed bytes, recomputed from the fields — a wire peer
        cannot decouple the signature from what it claims to cover."""
        return checkpoint_body(self.log_id, self.size, self.root,
                               self.prev_root)

    def as_dict(self) -> dict:
        return {
            "log_id": self.log_id, "size": self.size,
            "root": self.root.hex(), "prev_root": self.prev_root.hex(),
            "signature": base64.b64encode(self.signature).decode("ascii"),
            "params": self.params, "tenant": self.tenant, "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        try:
            return cls(
                log_id=data["log_id"], size=int(data["size"]),
                root=bytes.fromhex(data["root"]),
                prev_root=bytes.fromhex(data["prev_root"]),
                signature=base64.b64decode(data["signature"]),
                params=data["params"], tenant=data["tenant"],
                key=data["key"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed checkpoint: {exc}") from exc


@dataclass(frozen=True)
class AppendReceipt:
    """What an acknowledged append proves: where the entry landed and
    the signed checkpoint that covers it."""

    index: int
    leaf_hash: bytes
    entry: bytes
    checkpoint: Checkpoint


@dataclass(frozen=True)
class InclusionProof:
    """One served inclusion proof, self-contained for verification."""

    index: int
    size: int
    entry: bytes
    path: tuple[bytes, ...]
    checkpoint: Checkpoint

    def as_dict(self) -> dict:
        return {
            "index": self.index, "size": self.size,
            "entry": base64.b64encode(self.entry).decode("ascii"),
            "leaf_hash": leaf_hash(self.entry).hex(),
            "path": [node.hex() for node in self.path],
            "checkpoint": self.checkpoint.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InclusionProof":
        try:
            return cls(
                index=int(data["index"]), size=int(data["size"]),
                entry=base64.b64decode(data["entry"]),
                path=tuple(bytes.fromhex(node) for node in data["path"]),
                checkpoint=Checkpoint.from_dict(data["checkpoint"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed inclusion proof: {exc}") from exc


class LedgerService:
    """Batch-signed transparency log over any ``repro.api`` client.

    Parameters
    ----------
    client:
        A typed signing client — the sync :class:`~repro.api.SigningClient`
        facade (local / pooled / tcp / cluster) or the asyncio
        ``AsyncClient``.  Sync clients run on a worker thread so signing
        never blocks the event loop.
    tenant / key:
        The log's signing identity; entries and checkpoints both sign
        under it, so ``verify`` against the same keystore checks both.
    root:
        Log directory (segments + checkpoints); ``None`` = memory-only.
    batch_size / max_wait_ms:
        Seal policy: a full pending batch seals immediately, a partial
        one when the oldest append has waited *max_wait_ms*.
    metrics / tracer:
        The unified registry (``repro_ledger_*`` counters/gauges) and
        span sink (``append`` / ``seal`` / ``prove`` spans; one trace id
        covers ingest → batch-sign → checkpoint for each seal).
    """

    def __init__(self, client, *, tenant: str = "ledger",
                 key: str = "default", root: str | Path | None = None,
                 log_id: str = "repro-ledger", batch_size: int = 8,
                 max_wait_ms: float = 25.0, metrics=None,
                 tracer: Tracer | None = None):
        if batch_size < 1:
            raise LedgerError(f"batch_size must be >= 1, got {batch_size}")
        self._client = client
        self.tenant = tenant
        self.key = key
        self.log_id = log_id
        self.batch_size = batch_size
        self.max_wait_ms = max_wait_ms
        self.root = Path(root) if root is not None else None
        self.tracer = tracer
        self._checkpoints: dict[int, Checkpoint] = {}
        self._head: Checkpoint | None = None
        if self.root is not None:
            (self.root / CHECKPOINT_DIR).mkdir(parents=True, exist_ok=True)
            self._load_checkpoints()
        self.log = MerkleLog(
            self.root,
            trusted_size=self._head.size if self._head is not None else 0)
        #: (payload, future, ambient trace, enqueue wall time) per append.
        self._pending: list = []
        self._sealer: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._closed = False
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._acked = metrics.counter(
            "repro_ledger_appends_total",
            "ledger appends by outcome", outcome="acked")
        self._failed = metrics.counter(
            "repro_ledger_appends_total",
            "ledger appends by outcome", outcome="failed")
        self._sealed = metrics.counter(
            "repro_ledger_checkpoints_total", "signed tree heads sealed")
        self._proofs = metrics.counter(
            "repro_ledger_proofs_total", "proofs served", kind="inclusion")
        self._consistency = metrics.counter(
            "repro_ledger_proofs_total", "proofs served",
            kind="consistency")
        self._entries_gauge = metrics.gauge(
            "repro_ledger_entries", "entries covered by the head checkpoint")
        self._entries_gauge.set(float(self.log.size))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def head(self) -> Checkpoint | None:
        """The latest signed checkpoint (``None`` before the first seal)."""
        return self._head

    def checkpoint_for(self, size: int) -> Checkpoint:
        checkpoint = self._checkpoints.get(size)
        if checkpoint is None:
            sealed = sorted(self._checkpoints)
            raise LedgerError(
                f"no sealed checkpoint at size {size} "
                f"(sealed sizes: {sealed if sealed else '<none>'})")
        return checkpoint

    def stats(self) -> dict:
        return {
            "log_id": self.log_id, "tenant": self.tenant, "key": self.key,
            "entries": self.log.size,
            "checkpoints": len(self._checkpoints),
            "head_size": self._head.size if self._head else 0,
            "head_root": self._head.root.hex() if self._head else None,
            "pending": len(self._pending),
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    async def append(self, payload: bytes) -> AppendReceipt:
        """Ingest one event; resolves once a signed checkpoint covers it.

        Raises the typed signing-tier error (``OverloadedError``,
        ``NodeUnavailableError``, ...) when the batch could not seal —
        in that case nothing was committed and the event is not in the
        log.
        """
        if self._closed:
            raise LedgerError("ledger closed; appends are not accepted")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise ProtocolError(
                f"payload must be bytes, got {type(payload).__name__}")
        future = asyncio.get_running_loop().create_future()
        ctx = current_trace()
        if ctx is None and self.tracer is not None:
            ctx = start_trace()
        self._pending.append((bytes(payload), future, ctx, time.time()))
        if len(self._pending) >= self.batch_size:
            self._wake.set()
        if self._sealer is None or self._sealer.done():
            self._sealer = asyncio.ensure_future(self._seal_loop())
        return await future

    async def append_many(self, payloads) -> list[AppendReceipt]:
        """Ingest a burst; entries share seal batches where possible."""
        return list(await asyncio.gather(
            *(self.append(payload) for payload in payloads)))

    async def drain(self) -> None:
        """Wait until every pending append has sealed or failed."""
        while self._sealer is not None and not self._sealer.done():
            self._wake.set()
            await asyncio.shield(self._sealer)

    async def close(self) -> None:
        await self.drain()
        self._closed = True

    # ------------------------------------------------------------------
    # Seal (batch-sign + checkpoint)
    # ------------------------------------------------------------------
    async def _seal_loop(self) -> None:
        while self._pending:
            if len(self._pending) < self.batch_size:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           self.max_wait_ms / 1000.0)
                except asyncio.TimeoutError:
                    pass
            batch, self._pending = (self._pending[:MAX_SEAL_BATCH],
                                    self._pending[MAX_SEAL_BATCH:])
            if batch:
                await self._seal(batch)

    async def _call(self, method, /, *args, **kwargs):
        """Run one client call: await asyncio clients, thread sync ones.

        ``asyncio.to_thread`` copies the contextvars context, so the
        ambient trace installed by the sealer reaches a sync client's
        own span recording.
        """
        if asyncio.iscoroutinefunction(method):
            return await method(*args, **kwargs)
        return await asyncio.to_thread(method, *args, **kwargs)

    async def _seal(self, batch: list) -> None:
        payloads = [payload for payload, _, _, _ in batch]
        ctx = next((ctx for _, _, ctx, _ in batch if ctx is not None), None)
        started_wall = time.time()
        started_mono = time.perf_counter()
        try:
            with use_trace(ctx):
                results = await self._call(
                    self._client.sign_many, self.tenant, payloads,
                    key=self.key)
                entries = [encode_entry(payload, result.signature)
                           for payload, result in zip(payloads, results)]
                new_size, new_root = self.log.preview(entries)
                prev_root = (self._head.root if self._head is not None
                             else EMPTY_ROOT)
                body = checkpoint_body(self.log_id, new_size, new_root,
                                       prev_root)
                head_result = await self._call(
                    self._client.sign, self.tenant, body, key=self.key)
        except Exception as exc:  # noqa: BLE001 — typed errors fan out
            self._failed.inc(len(batch))
            for _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        # Commit: entries first (their own fsync'd segment), then the
        # checkpoint that covers them; a crash in between leaves an
        # unacknowledged tail that reload truncates.
        start = self.log.append(entries)
        checkpoint = Checkpoint(
            log_id=self.log_id, size=new_size, root=new_root,
            prev_root=prev_root, signature=head_result.signature,
            params=head_result.params, tenant=self.tenant, key=self.key)
        self._persist_checkpoint(checkpoint)
        self._checkpoints[new_size] = checkpoint
        self._head = checkpoint
        self._sealed.inc()
        self._acked.inc(len(batch))
        self._entries_gauge.set(float(new_size))
        ended = started_wall + (time.perf_counter() - started_mono)
        if self.tracer is not None and ctx is not None:
            self.tracer.record_span(
                "seal", trace=ctx, span_id=ctx.span_id,
                start=started_wall, end=ended, tenant=self.tenant,
                batch_size=len(batch), size=new_size)
        for offset, (_, future, entry_ctx, enqueued) in enumerate(batch):
            if self.tracer is not None and (entry_ctx or ctx) is not None:
                span_ctx = entry_ctx if entry_ctx is not None else ctx
                self.tracer.record_span(
                    "append", trace=span_ctx, parent_id=span_ctx.span_id,
                    start=enqueued, end=ended, index=start + offset)
            if not future.done():
                future.set_result(AppendReceipt(
                    index=start + offset,
                    leaf_hash=leaf_hash(entries[offset]),
                    entry=entries[offset], checkpoint=checkpoint))

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove(self, index: int, size: int | None = None) -> InclusionProof:
        """An inclusion proof for entry *index* against a sealed
        checkpoint (default: the head)."""
        if self._head is None:
            raise LedgerError("the log has no sealed checkpoint yet")
        size = self._head.size if size is None else size
        checkpoint = self.checkpoint_for(size)
        started = time.time()
        proof = InclusionProof(
            index=index, size=size, entry=self.log.entry(index),
            path=tuple(self.log.inclusion_path(index, size)),
            checkpoint=checkpoint)
        self._proofs.inc()
        if self.tracer is not None:
            ctx = current_trace()
            if ctx is not None:
                self.tracer.record_span(
                    "prove", trace=ctx, parent_id=ctx.span_id,
                    start=started, end=time.time(), index=index, size=size)
        return proof

    def consistency(self, since: int) -> tuple[Checkpoint, list[bytes]]:
        """The head checkpoint plus the proof it extends size *since*."""
        if self._head is None:
            raise LedgerError("the log has no sealed checkpoint yet")
        self.checkpoint_for(since)  # only sealed sizes are provable
        path = self.log.consistency_path(since, self._head.size)
        self._consistency.inc()
        return self._head, path

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _checkpoint_path(self, size: int) -> Path:
        assert self.root is not None
        return (self.root / CHECKPOINT_DIR
                / f"{size:0{_INDEX_WIDTH}d}.json")

    def _persist_checkpoint(self, checkpoint: Checkpoint) -> None:
        if self.root is None:
            return
        path = self._checkpoint_path(checkpoint.size)
        tmp = path.with_name(path.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(checkpoint.as_dict(), indent=2)
                             + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)

    def _load_checkpoints(self) -> None:
        assert self.root is not None
        for path in sorted((self.root / CHECKPOINT_DIR).glob("*.json")):
            try:
                checkpoint = Checkpoint.from_dict(
                    json.loads(path.read_text()))
            except (ValueError, ProtocolError) as exc:
                raise LedgerError(
                    f"corrupt checkpoint {path.name}: {exc}") from exc
            self._checkpoints[checkpoint.size] = checkpoint
        if self._checkpoints:
            self._head = self._checkpoints[max(self._checkpoints)]


class LedgerServer(SigningServer):
    """One port serving both the signing verbs and the transparency log.

    A stock :class:`SigningServer` whose registry includes the ledger
    verbs; the verb handlers reach the log through :attr:`ledger`.
    """

    def __init__(self, service: SigningService, ledger: LedgerService,
                 host: str = "127.0.0.1", port: int = 7744):
        from ..service.verbs import ledger_registry

        super().__init__(service, host=host, port=port,
                         registry=ledger_registry())
        self.ledger = ledger
