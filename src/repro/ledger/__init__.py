"""``repro.ledger`` — the signed transparency-log pipeline.

An append-only, Merkle-chained audit log on top of the signing tiers:
ingested events are batch-signed via the typed facade's ``sign_many``,
each sealed batch produces a signed tree head (checkpoint), and
consumers verify inclusion proofs plus the checkpoint signature through
the served ``verify`` path.  See
:mod:`repro.ledger.merkle` (hashing, proofs, persisted segments),
:mod:`repro.ledger.service` (ingest/seal pipeline + the ledger verbs),
and :mod:`repro.ledger.audit` (the replay/digest job behind
``repro audit``).
"""

from .audit import run_audit
from .merkle import (EMPTY_ROOT, MerkleLog, leaf_hash, node_hash,
                     root_from_inclusion_path, verify_consistency_path)
from .service import (AppendReceipt, Checkpoint, InclusionProof,
                      LedgerServer, LedgerService, checkpoint_body,
                      decode_entry, encode_entry)

__all__ = [
    "AppendReceipt", "Checkpoint", "EMPTY_ROOT", "InclusionProof",
    "LedgerServer", "LedgerService", "MerkleLog", "checkpoint_body",
    "decode_entry", "encode_entry", "leaf_hash", "node_hash",
    "root_from_inclusion_path", "run_audit", "verify_consistency_path",
]
