"""SPHINCS+ parameter sets.

The table mirrors the SPHINCS+ round-3 specification and paper Table I.  The
paper evaluates the *fast* (``-f``) sets; the *small* (``-s``) sets are
included for completeness because the functional layer supports them at no
extra cost.

Derived quantities (WOTS+ chain counts, signature sizes, per-component hash
counts) are computed properties so every other module — the functional
signer as well as the GPU workload builders — draws them from one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ParameterError

__all__ = [
    "SphincsParams",
    "PARAMETER_SETS",
    "FAST_SETS",
    "SMALL_SETS",
    "get_params",
]


@dataclass(frozen=True)
class SphincsParams:
    """One SPHINCS+ parameter set.

    Attributes
    ----------
    name:
        Canonical name, e.g. ``"SPHINCS+-128f"``.
    n:
        Security parameter: bytes of hash output, seeds and keys.
    h:
        Total height of the hypertree.
    d:
        Number of hypertree layers; each subtree has height ``h / d``.
    log_t:
        Height of each FORS tree (``t = 2**log_t`` leaves).
    k:
        Number of FORS trees.
    w:
        Winternitz parameter for WOTS+.
    """

    name: str
    n: int
    h: int
    d: int
    log_t: int
    k: int
    w: int

    def __post_init__(self) -> None:
        if self.h % self.d != 0:
            raise ParameterError(
                f"{self.name}: hypertree height h={self.h} must be divisible "
                f"by layer count d={self.d}"
            )
        if self.w & (self.w - 1):
            raise ParameterError(f"{self.name}: w={self.w} must be a power of two")
        if self.n not in (16, 24, 32):
            raise ParameterError(f"{self.name}: n={self.n} must be 16, 24 or 32")

    # ------------------------------------------------------------------
    # Tree geometry
    # ------------------------------------------------------------------
    @property
    def tree_height(self) -> int:
        """Height ``h/d`` of each hypertree (XMSS) subtree."""
        return self.h // self.d

    @property
    def tree_leaves(self) -> int:
        """Leaves per hypertree subtree (``2**(h/d)``)."""
        return 1 << self.tree_height

    @property
    def t(self) -> int:
        """Leaves per FORS tree."""
        return 1 << self.log_t

    @property
    def fors_leaves_total(self) -> int:
        """Total FORS leaves across all ``k`` trees."""
        return self.k * self.t

    @property
    def hypertree_leaves_total(self) -> int:
        """Total WOTS+ leaves across all ``d`` layers of one signature path."""
        return self.d * self.tree_leaves

    # ------------------------------------------------------------------
    # WOTS+ geometry
    # ------------------------------------------------------------------
    @property
    def log_w(self) -> int:
        return self.w.bit_length() - 1

    @property
    def wots_len1(self) -> int:
        """Number of chains encoding the message digest."""
        return math.ceil(8 * self.n / self.log_w)

    @property
    def wots_len2(self) -> int:
        """Number of chains encoding the checksum."""
        max_checksum = self.wots_len1 * (self.w - 1)
        return math.floor(math.log2(max_checksum) / self.log_w) + 1

    @property
    def wots_len(self) -> int:
        """Total WOTS+ chain count (``len1 + len2``)."""
        return self.wots_len1 + self.wots_len2

    # ------------------------------------------------------------------
    # Message digest / index extraction geometry
    # ------------------------------------------------------------------
    @property
    def fors_msg_bytes(self) -> int:
        """Bytes of digest consumed by the FORS index extraction."""
        return math.ceil(self.k * self.log_t / 8)

    @property
    def tree_msg_bytes(self) -> int:
        """Bytes of digest selecting the hypertree leaf chain (idx_tree)."""
        return math.ceil((self.h - self.tree_height) / 8)

    @property
    def leaf_msg_bytes(self) -> int:
        """Bytes of digest selecting the leaf within the bottom subtree."""
        return math.ceil(self.tree_height / 8)

    @property
    def digest_bytes(self) -> int:
        """Total H_msg digest length consumed by index extraction."""
        return self.fors_msg_bytes + self.tree_msg_bytes + self.leaf_msg_bytes

    # ------------------------------------------------------------------
    # Sizes (bytes)
    # ------------------------------------------------------------------
    @property
    def wots_sig_bytes(self) -> int:
        return self.wots_len * self.n

    @property
    def fors_sig_bytes(self) -> int:
        """k * (secret value + auth path of log_t siblings)."""
        return self.k * (1 + self.log_t) * self.n

    @property
    def xmss_sig_bytes(self) -> int:
        """One hypertree layer: WOTS+ signature + auth path."""
        return self.wots_sig_bytes + self.tree_height * self.n

    @property
    def sig_bytes(self) -> int:
        """Full signature: randomizer + FORS + d hypertree layers."""
        return self.n + self.fors_sig_bytes + self.d * self.xmss_sig_bytes

    @property
    def pk_bytes(self) -> int:
        return 2 * self.n

    @property
    def sk_bytes(self) -> int:
        return 4 * self.n

    # ------------------------------------------------------------------
    # Hash-operation counts (used by the GPU workload builders)
    # ------------------------------------------------------------------
    @property
    def hashes_per_wots_leaf(self) -> int:
        """Hash calls to build one WOTS+ leaf (``wots_gen_leaf``).

        Each of ``wots_len`` chains needs one PRF (secret key) plus ``w-1``
        chain steps to reach the public value; compressing the ``wots_len``
        public values into the leaf costs one more (multi-block) T-hash.
        The paper quotes ~560 / 816 / 1072 SHA-2 computations for one leaf
        under 128f/192f/256f; this property reproduces those counts.
        """
        return self.wots_len * self.w

    @property
    def hashes_per_fors_leaf(self) -> int:
        """PRF (secret value) + leaf hash."""
        return 2

    def fors_sign_hashes(self) -> int:
        """Total hash calls in FORS_Sign: leaves + internal-node reduction."""
        per_tree = self.t * self.hashes_per_fors_leaf + (self.t - 1)
        return self.k * per_tree

    def tree_sign_hashes(self) -> int:
        """Total hash calls in TREE_Sign (all d layers of the hypertree)."""
        leaves = self.tree_leaves * self.hashes_per_wots_leaf
        internal = self.tree_leaves - 1
        return self.d * (leaves + internal)

    def wots_sign_hashes(self) -> int:
        """Hash calls to produce the d WOTS+ signatures (chains to msg value).

        Signing evaluates each chain only up to the message digit; on average
        that is ``w/2`` steps plus one PRF per chain.
        """
        avg_steps = self.w // 2
        return self.d * self.wots_len * (1 + avg_steps)

    def total_sign_hashes(self) -> int:
        return self.fors_sign_hashes() + self.tree_sign_hashes() + self.wots_sign_hashes()


def _make_sets() -> dict[str, SphincsParams]:
    table = [
        # name            n   h   d  log_t  k   w
        ("SPHINCS+-128f", 16, 66, 22, 6, 33, 16),
        ("SPHINCS+-128s", 16, 63, 7, 12, 14, 16),
        ("SPHINCS+-192f", 24, 66, 22, 8, 33, 16),
        ("SPHINCS+-192s", 24, 63, 7, 14, 17, 16),
        ("SPHINCS+-256f", 32, 68, 17, 9, 35, 16),
        ("SPHINCS+-256s", 32, 64, 8, 14, 22, 16),
    ]
    return {
        name: SphincsParams(name, n, h, d, log_t, k, w)
        for name, n, h, d, log_t, k, w in table
    }


PARAMETER_SETS: dict[str, SphincsParams] = _make_sets()
FAST_SETS: tuple[str, ...] = ("SPHINCS+-128f", "SPHINCS+-192f", "SPHINCS+-256f")
SMALL_SETS: tuple[str, ...] = ("SPHINCS+-128s", "SPHINCS+-192s", "SPHINCS+-256s")

_ALIASES = {
    "128f": "SPHINCS+-128f",
    "192f": "SPHINCS+-192f",
    "256f": "SPHINCS+-256f",
    "128s": "SPHINCS+-128s",
    "192s": "SPHINCS+-192s",
    "256s": "SPHINCS+-256s",
}


def get_params(name: str) -> SphincsParams:
    """Look up a parameter set by canonical name or short alias.

    >>> get_params("128f").n
    16
    >>> get_params("SPHINCS+-256f").k
    35
    """
    canonical = _ALIASES.get(name.lower().removeprefix("sphincs+-"), name)
    try:
        return PARAMETER_SETS[canonical]
    except KeyError:
        known = ", ".join(sorted(PARAMETER_SETS))
        raise ParameterError(f"unknown parameter set {name!r}; known: {known}") from None
