"""Network chaos for the service tier: a deterministic flaky-TCP proxy.

:class:`FlakyProxy` sits between a client and a :class:`SigningServer`
and mistreats the byte stream in the ways real networks do:

* **splits** — a chunk is written in two pieces (exercises partial-line
  reads and reassembly on both ends);
* **delays** — a chunk is held back for a few milliseconds (reorders
  writes relative to timers, widens batching windows);
* **drops** — the connection is torn down mid-stream, optionally after
  leaking a truncated prefix of the chunk (exercises EOF-mid-frame
  handling and client reconnect logic).

The chaos suite's contract mirrors the fault injector's: a client talking
through the proxy may see *typed* errors (connection reset, protocol
error, load shed) and may have to reconnect, but it must never receive a
wrong signature and never hang — every outcome is a verified signature,
a structured failure, or a clean timeout.

All misbehaviour is drawn from one ``random.Random(seed)``, so a failing
run reproduces from its seed.  Rates are probabilities per forwarded
chunk (per connection for ``drop_rate``-triggered teardowns).
"""

from __future__ import annotations

import asyncio
import random

__all__ = ["FlakyProxy"]

_CHUNK = 4096


class FlakyProxy:
    """A seeded, misbehaving TCP forwarder for chaos tests."""

    def __init__(self, target_port: int, target_host: str = "127.0.0.1",
                 host: str = "127.0.0.1", seed: int = 0,
                 drop_rate: float = 0.05, split_rate: float = 0.25,
                 delay_rate: float = 0.25, max_delay_s: float = 0.005):
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self.port = 0
        self.rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.split_rate = split_rate
        self.delay_rate = delay_rate
        self.max_delay_s = max_delay_s
        # Observability for assertions: the chaos actually happened.
        self.connections = 0
        self.dropped = 0
        self.splits = 0
        self.delays = 0
        self.forwarded_bytes = 0
        self._server: asyncio.base_events.Server | None = None
        self._handlers: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            target_reader, target_writer = await asyncio.open_connection(
                self.target_host, self.target_port)
        except OSError:
            client_writer.close()
            return
        loop = asyncio.get_running_loop()
        pumps = [
            loop.create_task(self._pump(client_reader, target_writer,
                                        client_writer)),
            loop.create_task(self._pump(target_reader, client_writer,
                                        target_writer)),
        ]
        for task in pumps:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        await asyncio.gather(*pumps, return_exceptions=True)
        for writer in (client_writer, target_writer):
            writer.close()

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter,
                    other_writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                data = await reader.read(_CHUNK)
                if not data:
                    break
                if self.rng.random() < self.drop_rate:
                    # Tear the connection down mid-stream, leaking a
                    # truncated prefix half the time (the nastier case:
                    # the peer sees a partial frame, then EOF).
                    self.dropped += 1
                    if len(data) > 1 and self.rng.random() < 0.5:
                        writer.write(data[:self.rng.randrange(1, len(data))])
                        await writer.drain()
                    break
                if self.rng.random() < self.delay_rate:
                    self.delays += 1
                    await asyncio.sleep(
                        self.rng.uniform(0.0, self.max_delay_s))
                if len(data) > 1 and self.rng.random() < self.split_rate:
                    self.splits += 1
                    cut = self.rng.randrange(1, len(data))
                    writer.write(data[:cut])
                    await writer.drain()
                    writer.write(data[cut:])
                else:
                    writer.write(data)
                await writer.drain()
                self.forwarded_bytes += len(data)
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            pass
        finally:
            for target in (writer, other_writer):
                try:
                    target.close()
                except RuntimeError:
                    pass
