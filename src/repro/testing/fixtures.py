"""Pytest fixture library for the conformance subsystem.

Star-import this module from a project ``conftest.py``::

    from repro.testing.fixtures import *  # noqa: F401,F403

and test functions can take ``differential_oracle``, ``conformance_corpus``,
``fault_factory``, or ``flaky_proxy_factory`` as arguments.  The factories
return configured-but-unstarted objects so each test controls scope and
cost (the oracle in particular can sign a lot — default everything to
smoke mode).
"""

from __future__ import annotations

import pytest

from .chaos import FlakyProxy
from .corpus import message_corpus
from .faults import parse_fault
from .oracle import DifferentialOracle

__all__ = ["conformance_corpus", "differential_oracle", "fault_factory",
           "flaky_proxy_factory"]


@pytest.fixture
def conformance_corpus():
    """The smoke message corpus (seed 0) as ``(case, message)`` pairs."""
    return message_corpus(seed=0, smoke=True)


@pytest.fixture
def differential_oracle():
    """Factory: ``make(params='128f', **oracle_kwargs)`` -> oracle.

    Defaults to smoke corpus and no async-service pass; override per
    test (``include_service=True``) where the extra coverage is the
    point.
    """
    def make(params: str = "128f", **kwargs) -> DifferentialOracle:
        kwargs.setdefault("smoke", True)
        kwargs.setdefault("include_service", False)
        kwargs.setdefault("include_clients", False)
        return DifferentialOracle(params, **kwargs)

    return make


@pytest.fixture
def fault_factory():
    """Factory: ``make('thash:bitflip:7:0')`` -> :class:`BitFlipFault`."""
    return parse_fault


@pytest.fixture
def flaky_proxy_factory():
    """Factory: ``make(target_port, **proxy_kwargs)`` -> started proxy.

    The fixture stops every proxy it started when the test ends (callers
    run the event loop themselves, so teardown collects the coroutines).
    """
    proxies: list[FlakyProxy] = []

    def make(target_port: int, **kwargs) -> FlakyProxy:
        proxy = FlakyProxy(target_port, **kwargs)
        proxies.append(proxy)
        return proxy

    yield make
    import asyncio

    for proxy in proxies:
        if proxy._server is not None:
            asyncio.run(proxy.stop())
