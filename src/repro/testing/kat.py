"""Pinned known-answer-test (KAT) vectors for the deterministic signer.

The repository pins, for each of the four supported parameter sets
(128s / 128f / 192s / 256s), the deterministic signatures of a small fixed
message set under a seed derived from the set's name.  The vectors live in
``tests/vectors/kat_<set>.json`` and record SHA-256 digests of every
signature plus per-component digests (randomizer, FORS block, per-layer
WOTS chains and Merkle auth paths), so a drifted vector does not just say
"changed" — it says *which hop* changed.

Workflow
--------
* ``repro conformance --check-kats`` regenerates every pinned signature
  and fails on any digest mismatch (CI runs this on every push).
* ``repro conformance --regen-kats`` rewrites the vector files.  That is
  an intentional, reviewed act: the diff in ``tests/vectors/`` is the
  statement "this PR changes signature bytes", and a PR that changes them
  accidentally fails CI instead of silently shipping new signatures.

Digests (not full signatures) are pinned because the check re-signs
deterministically anyway — storing 30 KB blobs four times over would pin
nothing extra — while component digests keep divergence localizable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..errors import ConformanceError
from ..params import get_params
from ..runtime.registry import get_backend
from ..service.keystore import derive_seed
from ..sphincs.signer import Sphincs

__all__ = ["KAT_SETS", "KAT_FORMAT", "default_vectors_dir", "kat_path",
           "kat_corpus", "generate_kat", "check_kat", "load_kat"]

#: The parameter sets with pinned vectors.
KAT_SETS = ("128s", "128f", "192s", "256s")

#: Bump when the vector file layout changes.
KAT_FORMAT = 1


def default_vectors_dir() -> Path:
    """``tests/vectors/`` of the repository this module was loaded from."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "vectors"
        if candidate.is_dir():
            return candidate
    # Fresh checkout before the first --regen-kats: src/repro/testing/kat.py
    # -> repo root is three levels up from the package directory.
    return here.parents[3] / "tests" / "vectors"


def _short_name(params: str) -> str:
    """Canonical -> short set name: ``SPHINCS+-128s`` -> ``128s``."""
    return get_params(params).name.rsplit("-", 1)[-1]


def kat_path(params: str, vectors_dir: Path | None = None) -> Path:
    base = vectors_dir if vectors_dir is not None else default_vectors_dir()
    return base / f"kat_{_short_name(params)}.json"


def kat_corpus() -> list[tuple[str, bytes]]:
    """The fixed KAT message set (small on purpose — the -s sets sign
    in seconds each, and four sets are pinned)."""
    return [
        ("empty", b""),
        ("abc", b"abc"),
        ("counter-256", bytes(i & 0xFF for i in range(256))),
    ]


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _components(scheme: Sphincs, signature: bytes) -> dict:
    """Per-component digests, for localizing a drifted vector."""
    randomizer, fors_sig, ht_sig = scheme.deserialize(signature)
    return {
        "randomizer": randomizer.hex(),
        "fors_sha256": _sha256(b"".join(
            secret + b"".join(path) for secret, path in fors_sig)),
        "layers": [
            {"wots_sha256": _sha256(b"".join(chains)),
             "auth_sha256": _sha256(b"".join(path))}
            for chains, path in ht_sig
        ],
    }


def _build_vector(params: str) -> dict:
    """Deterministically recompute the full vector payload for *params*."""
    spec = get_params(params)
    seed = derive_seed(f"kat/{_short_name(params)}", spec.n)
    # The vectorized backend is byte-identical to the scalar scheme in
    # deterministic mode (pinned by tests/runtime) and an order of
    # magnitude faster on the -s sets.
    backend = get_backend("vectorized", spec.name, deterministic=True)
    keys = backend.keygen(seed=seed)
    scheme = Sphincs(spec, deterministic=True)
    messages = []
    for case, message in kat_corpus():
        signature = backend.sign(message, keys)
        if not scheme.verify(message, signature, keys.public):
            raise ConformanceError(
                f"{spec.name}: KAT signature for {case!r} failed verification"
            )
        messages.append({
            "case": case,
            "message_hex": message.hex(),
            "signature_len": len(signature),
            "signature_sha256": _sha256(signature),
            "components": _components(scheme, signature),
        })
    return {
        "format": KAT_FORMAT,
        "params": spec.name,
        "seed_hex": seed.hex(),
        "public_key_hex": keys.public.hex(),
        "signature_bytes": spec.sig_bytes,
        "messages": messages,
    }


def generate_kat(params: str, vectors_dir: Path | None = None) -> Path:
    """(Re)write the pinned vector file for *params*; returns its path."""
    path = kat_path(params, vectors_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_build_vector(params), indent=2) + "\n")
    return path


def load_kat(params: str, vectors_dir: Path | None = None) -> dict:
    path = kat_path(params, vectors_dir)
    if not path.is_file():
        raise ConformanceError(
            f"no pinned KAT vector at {path}; run "
            "'repro conformance --regen-kats' and commit the result"
        )
    try:
        payload = json.loads(path.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConformanceError(f"unreadable KAT vector {path}: {exc}") from exc
    if payload.get("format") != KAT_FORMAT:
        raise ConformanceError(
            f"{path.name}: format {payload.get('format')!r}, expected "
            f"{KAT_FORMAT}; regenerate with --regen-kats"
        )
    return payload


def check_kat(params: str, vectors_dir: Path | None = None) -> list[str]:
    """Recompute *params*' vector and diff it against the pinned file.

    Returns human-readable drift findings (empty == no drift).  Signature
    drift is localized to the first diverging component via the pinned
    component digests.
    """
    pinned = load_kat(params, vectors_dir)
    current = _build_vector(params)
    problems: list[str] = []
    short = _short_name(params)
    for key in ("params", "seed_hex", "public_key_hex", "signature_bytes"):
        if pinned.get(key) != current[key]:
            problems.append(
                f"{short}: {key} drifted ({pinned.get(key)!r} -> "
                f"{current[key]!r})"
            )
    pinned_msgs = {entry.get("case"): entry
                   for entry in pinned.get("messages", [])}
    for entry in current["messages"]:
        case = entry["case"]
        old = pinned_msgs.pop(case, None)
        if old is None:
            problems.append(f"{short}/{case}: missing from pinned vector")
            continue
        if old.get("message_hex") != entry["message_hex"]:
            problems.append(f"{short}/{case}: pinned message bytes differ")
            continue
        if old.get("signature_sha256") == entry["signature_sha256"]:
            continue
        stage = _first_component_drift(old.get("components", {}),
                                       entry["components"])
        problems.append(
            f"{short}/{case}: signature drifted at {stage} "
            f"(pinned {old.get('signature_sha256', '?')[:16]}, "
            f"current {entry['signature_sha256'][:16]})"
        )
    for case in pinned_msgs:
        problems.append(f"{short}/{case}: pinned but no longer generated")
    return problems


def _first_component_drift(old: dict, new: dict) -> str:
    if old.get("randomizer") != new["randomizer"]:
        return "randomizer"
    if old.get("fors_sha256") != new["fors_sha256"]:
        return "fors"
    old_layers = old.get("layers", [])
    for layer, entry in enumerate(new["layers"]):
        before = old_layers[layer] if layer < len(old_layers) else {}
        if before.get("wots_sha256") != entry["wots_sha256"]:
            return f"wots (layer {layer})"
        if before.get("auth_sha256") != entry["auth_sha256"]:
            return f"merkle (layer {layer} auth path)"
    return "unknown (component digests match)"
