"""Structured signing traces over the sphincs/ instrumentation hooks.

Every SPHINCS+ component reports its per-stage output through the optional
``HashContext.tracer`` sink (see ``repro.hashes.thash``): the message
digestion, each FORS forest, every Merkle subtree root, every WOTS+ chain
bundle, and the final hypertree root.  A trace is the ordered list of
those hops, each compressed to a short digest — two signing runs computed
the same signature if and only if their traces match hop for hop, and
when they do *not* match, the first differing hop names the stage where
the computations parted ways.

That is how the conformance oracle localizes an injected fault: capture a
clean trace and a faulted trace of the same (message, key) pair and
report :func:`first_divergence`.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass

from ..params import SphincsParams
from ..sphincs.signer import KeyPair, Sphincs

__all__ = ["TraceHop", "TraceRecorder", "capture_trace", "first_divergence"]


@dataclass(frozen=True)
class TraceHop:
    """One recorded stage output: where it came from and a short digest."""

    stage: str   # "prepare" | "fors" | "merkle" | "wots" | "hypertree"
    label: str   # stage-specific position, e.g. "layer=2/tree=7"
    digest: str  # first 16 hex chars of SHA-256 over the stage output

    def __str__(self) -> str:
        return f"{self.stage}[{self.label}]={self.digest}"


class TraceRecorder:
    """A ``HashContext.tracer`` sink that appends :class:`TraceHop`\\ s."""

    def __init__(self) -> None:
        self.hops: list[TraceHop] = []

    def record(self, stage: str, label: str, value: bytes) -> None:
        self.hops.append(TraceHop(
            stage=stage, label=label,
            digest=hashlib.sha256(value).hexdigest()[:16],
        ))

    def clear(self) -> None:
        self.hops.clear()


def capture_trace(params: SphincsParams | str, message: bytes,
                  keys: KeyPair | None = None,
                  fault=None) -> list[TraceHop]:
    """Sign *message* on the reference path and return its stage trace.

    Uses a fresh deterministic :class:`Sphincs` scheme so traces of the
    same (params, message, keys) triple are reproducible.  *keys* defaults
    to the all-zero-seed deterministic pair (the same one the scheduler
    and the KAT store pin).  *fault* is an optional injector from
    :mod:`repro.testing.faults`, installed for the duration of the sign.
    """
    scheme = Sphincs(params, deterministic=True)
    if keys is None:
        keys = scheme.keygen(seed=bytes(3 * scheme.params.n))
    recorder = TraceRecorder()
    scheme.ctx.tracer = recorder
    guard = fault.install(scheme.ctx) if fault is not None else nullcontext()
    try:
        with guard:
            scheme.sign(message, keys)
    finally:
        scheme.ctx.tracer = None
    return recorder.hops


def first_divergence(a: list[TraceHop],
                     b: list[TraceHop]) -> tuple[int, TraceHop, TraceHop] | None:
    """The first hop where two traces differ, or None if identical.

    Returns ``(index, hop_a, hop_b)``; a length mismatch past the common
    prefix is reported at the first missing index with a synthetic
    ``<absent>`` hop.
    """
    absent = TraceHop(stage="<absent>", label="-", digest="-")
    for index in range(max(len(a), len(b))):
        hop_a = a[index] if index < len(a) else absent
        hop_b = b[index] if index < len(b) else absent
        if hop_a != hop_b:
            return index, hop_a, hop_b
    return None
