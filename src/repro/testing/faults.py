"""Deterministic fault injection into the tweakable-hash layer.

The SPHINCS+ fault-attack literature (Genet et al., "Practical Fault
Injection Attacks on SPHINCS") shows that a *single* corrupted hash inside
the WOTS/FORS computation silently yields a signature over the wrong
intermediate value — the signer notices nothing, but the signature either
fails verification (the benign outcome this suite demands) or, in a
grafted-tree attack, becomes forgery material.  A conformance suite for a
signing service therefore has to prove the *detection* property: every
injected hash fault must surface as a verification failure or a structured
error, never as a silently-served wrong signature.

:class:`BitFlipFault` is the deterministic injector: it wraps one
:class:`~repro.hashes.thash.HashContext` instance and flips one bit of the
output of the N-th ``thash`` (or ``prf``) call.  Determinism — same call
index, same bit, same traffic — is what lets the oracle pin the resulting
divergence to a stage and lets CI replay the exact same fault on every
push.

Fault specs are parsed from strings so the CLI can take them directly::

    thash:bitflip            # defaults: call 7, bit 0
    thash:bitflip:120        # flip a bit of thash call #120
    thash:bitflip:120:5      # ... bit 5 of its output
    prf:bitflip:3            # flip the 4th PRF output instead
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ConformanceError
from ..hashes.thash import HashContext

__all__ = ["BitFlipFault", "flip_bit", "parse_fault"]

_TARGETS = ("thash", "prf")


def flip_bit(data: bytes, bit: int) -> bytes:
    """Return *data* with absolute bit index *bit* flipped (MSB-first)."""
    if not 0 <= bit < 8 * len(data):
        raise ConformanceError(
            f"bit {bit} out of range for {len(data)}-byte value"
        )
    out = bytearray(data)
    out[bit // 8] ^= 0x80 >> (bit % 8)
    return bytes(out)


@dataclass
class BitFlipFault:
    """Flip one bit of one hash-call output, deterministically.

    Parameters
    ----------
    target:
        ``"thash"`` or ``"prf"`` — which hash-context entry point to tap.
    call_index:
        Zero-based index of the tapped call, counted from installation.
        The default lands inside the very first FORS tree build on every
        parameter set, so the corrupted node provably feeds the signature.
    bit:
        Bit of the n-byte output to flip.
    """

    target: str = "thash"
    call_index: int = 7
    bit: int = 0
    #: How many target calls the installed hook has seen.
    calls_seen: int = field(default=0, init=False)
    #: Whether the fault actually fired (the tapped call was reached).
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.target not in _TARGETS:
            raise ConformanceError(
                f"unknown fault target {self.target!r}; "
                f"known: {', '.join(_TARGETS)}"
            )
        if self.call_index < 0:
            raise ConformanceError(
                f"call_index must be >= 0, got {self.call_index}"
            )

    @property
    def spec(self) -> str:
        return f"{self.target}:bitflip:{self.call_index}:{self.bit}"

    @contextmanager
    def install(self, ctx: HashContext):
        """Tap *ctx* for the duration of the ``with`` block.

        The hook shadows the bound method with an instance attribute and
        deletes it on exit, so the context is bit-for-bit back to normal
        afterwards.  Counters (:attr:`calls_seen`, :attr:`fired`) reset on
        each installation.
        """
        if self.target in ctx.__dict__:
            raise ConformanceError(
                f"a fault is already installed on this context's "
                f"{self.target}"
            )
        self.calls_seen = 0
        self.fired = False
        original = getattr(ctx, self.target)

        def tapped(*args, **kwargs):
            out = original(*args, **kwargs)
            if self.calls_seen == self.call_index:
                out = flip_bit(out, self.bit)
                self.fired = True
            self.calls_seen += 1
            return out

        setattr(ctx, self.target, tapped)
        try:
            yield self
        finally:
            del ctx.__dict__[self.target]


def parse_fault(spec: str) -> BitFlipFault:
    """Parse a ``target:bitflip[:call_index[:bit]]`` fault spec."""
    parts = spec.strip().split(":")
    if len(parts) < 2 or parts[1] != "bitflip":
        raise ConformanceError(
            f"unsupported fault spec {spec!r}; expected "
            "'thash:bitflip[:call_index[:bit]]' or 'prf:bitflip[...]'"
        )
    kwargs: dict[str, int] = {}
    try:
        if len(parts) >= 3:
            kwargs["call_index"] = int(parts[2])
        if len(parts) >= 4:
            kwargs["bit"] = int(parts[3])
        if len(parts) > 4:
            raise ValueError("too many fields")
    except ValueError as exc:
        raise ConformanceError(f"bad fault spec {spec!r}: {exc}") from exc
    return BitFlipFault(target=parts[0], **kwargs)
