"""Deterministic fault injection into the tweakable-hash layer.

The SPHINCS+ fault-attack literature (Genet et al., "Practical Fault
Injection Attacks on SPHINCS") shows that a *single* corrupted hash inside
the WOTS/FORS computation silently yields a signature over the wrong
intermediate value — the signer notices nothing, but the signature either
fails verification (the benign outcome this suite demands) or, in a
grafted-tree attack, becomes forgery material.  A conformance suite for a
signing service therefore has to prove the *detection* property: every
injected hash fault must surface as a verification failure or a structured
error, never as a silently-served wrong signature.

:class:`BitFlipFault` is the deterministic injector: it wraps one
:class:`~repro.hashes.thash.HashContext` instance and flips one bit of the
output of the N-th ``thash`` (or ``prf``) call.  Determinism — same call
index, same bit, same traffic — is what lets the oracle pin the resulting
divergence to a stage and lets CI replay the exact same fault on every
push.

:class:`CachedNodeFault` extends the threat model to the hypertree layer
cache: it corrupts one node *inside a cached subtree* between two signing
passes.  A naive flip leaves the auth path inconsistent with the root, so
verification fails — detectable.  The dangerous variant (``consistent``,
the default) also recomputes the flipped node's ancestors, producing a
subtree that is internally consistent but *wrong*: the signer happily
emits a signature that still **verifies**, yet differs byte-for-byte from
the reference — exactly the fault-attack class only a differential oracle
catches.

Fault specs are parsed from strings so the CLI can take them directly::

    thash:bitflip            # defaults: call 7, bit 0
    thash:bitflip:120        # flip a bit of thash call #120
    thash:bitflip:120:5      # ... bit 5 of its output
    prf:bitflip:3            # flip the 4th PRF output instead
    cache:flip               # consistent flip in a cached subtree
    cache:flip:0:3           # ... level 0, bit 3
    cache:flip:0:0:benign    # naive flip (auth path breaks, verify fails)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ConformanceError
from ..hashes.thash import HashContext

__all__ = ["BitFlipFault", "CachedNodeFault", "flip_bit", "parse_fault"]

_TARGETS = ("thash", "prf")


def flip_bit(data: bytes, bit: int) -> bytes:
    """Return *data* with absolute bit index *bit* flipped (MSB-first)."""
    if not 0 <= bit < 8 * len(data):
        raise ConformanceError(
            f"bit {bit} out of range for {len(data)}-byte value"
        )
    out = bytearray(data)
    out[bit // 8] ^= 0x80 >> (bit % 8)
    return bytes(out)


@dataclass
class BitFlipFault:
    """Flip one bit of one hash-call output, deterministically.

    Parameters
    ----------
    target:
        ``"thash"`` or ``"prf"`` — which hash-context entry point to tap.
    call_index:
        Zero-based index of the tapped call, counted from installation.
        The default lands inside the very first FORS tree build on every
        parameter set, so the corrupted node provably feeds the signature.
    bit:
        Bit of the n-byte output to flip.
    """

    target: str = "thash"
    call_index: int = 7
    bit: int = 0
    #: How many target calls the installed hook has seen.
    calls_seen: int = field(default=0, init=False)
    #: Whether the fault actually fired (the tapped call was reached).
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.target not in _TARGETS:
            raise ConformanceError(
                f"unknown fault target {self.target!r}; "
                f"known: {', '.join(_TARGETS)}"
            )
        if self.call_index < 0:
            raise ConformanceError(
                f"call_index must be >= 0, got {self.call_index}"
            )

    @property
    def spec(self) -> str:
        return f"{self.target}:bitflip:{self.call_index}:{self.bit}"

    @contextmanager
    def install(self, ctx: HashContext):
        """Tap *ctx* for the duration of the ``with`` block.

        The hook shadows the bound method with an instance attribute and
        deletes it on exit, so the context is bit-for-bit back to normal
        afterwards.  Counters (:attr:`calls_seen`, :attr:`fired`) reset on
        each installation.
        """
        if self.target in ctx.__dict__:
            raise ConformanceError(
                f"a fault is already installed on this context's "
                f"{self.target}"
            )
        self.calls_seen = 0
        self.fired = False
        original = getattr(ctx, self.target)

        def tapped(*args, **kwargs):
            out = original(*args, **kwargs)
            if self.calls_seen == self.call_index:
                out = flip_bit(out, self.bit)
                self.fired = True
            self.calls_seen += 1
            return out

        setattr(ctx, self.target, tapped)
        try:
            yield self
        finally:
            del ctx.__dict__[self.target]


@dataclass
class CachedNodeFault:
    """Flip one bit of one node inside a cached hypertree subtree.

    Models a memory fault (rowhammer, cosmic ray, hostile DMA) hitting
    the layer cache *after* it was built and validated.  Applied between
    two signing passes over the same traffic, so the divergence is
    provably the cached state and nothing else.

    Parameters
    ----------
    level:
        Subtree level of the corrupted node (0 = WOTS leaves).  The node
        chosen is the *sibling* on the signing leaf's auth path, so the
        flip provably lands in emitted signature bytes.
    bit:
        Bit of the n-byte node value to flip.
    layer_from_top:
        How far below the top hypertree layer to strike (>= 1; the top
        tree's root is pinned in the public key, so corrupting it raises
        a root mismatch instead of diverging silently).
    consistent:
        When true (default), recompute the flipped node's ancestors so
        the subtree stays internally consistent — the resulting signature
        still *verifies* but is wrong (the attack class only the
        differential oracle catches).  When false, leave the ancestors
        stale: the auth path no longer reaches the root and verification
        fails (the benign, self-detecting outcome).
    """

    level: int = 0
    bit: int = 0
    layer_from_top: int = 1
    consistent: bool = True
    #: Entry point tapped — mirrors BitFlipFault for CLI diagnostics.
    target: str = field(default="cache", init=False)
    #: How many cache strikes the fault has performed.
    calls_seen: int = field(default=0, init=False)
    #: Whether the fault actually fired (a cached subtree was corrupted).
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ConformanceError(f"level must be >= 0, got {self.level}")
        if self.layer_from_top < 1:
            raise ConformanceError(
                "layer_from_top must be >= 1: the top tree's root is "
                "pinned in the public key, a flip there cannot diverge "
                "silently"
            )

    @property
    def spec(self) -> str:
        base = f"cache:flip:{self.level}:{self.bit}"
        return base if self.consistent else base + ":benign"

    def apply(self, ops, idx_tree: int) -> str:
        """Corrupt the cached subtree that signing *idx_tree* traverses.

        *ops* is the backend's per-key :class:`~.runtime.fastops.FastOps`
        instance; its layer cache holds (or will hold) the target
        subtree.  Returns a human-readable detail string for the report.
        """
        params = ops.params
        th = params.tree_height
        layer = params.d - 1 - self.layer_from_top
        if layer < 0:
            raise ConformanceError(
                f"layer_from_top {self.layer_from_top} exceeds hypertree "
                f"depth d={params.d}"
            )
        if self.level >= th:
            raise ConformanceError(
                f"level {self.level} out of range for tree_height {th}"
            )
        tree = idx_tree >> (th * layer)
        leaf = ((idx_tree >> (th * (layer - 1))) & (params.tree_leaves - 1)
                if layer else idx_tree & (params.tree_leaves - 1))
        # Build-or-fetch the cached subtree, then mutate it in place —
        # the next signing pass serves the corrupted copy.
        levels = ops.subtree_levels(layer, tree)
        sibling = (leaf >> self.level) ^ 1
        levels[self.level][sibling] = flip_bit(
            levels[self.level][sibling], self.bit)
        if self.consistent:
            # Recompute the ancestors along the leaf's path so the tree
            # is self-consistent again (with a different root).
            for height in range(self.level + 1, th + 1):
                index = leaf >> height
                left = levels[height - 1][2 * index]
                right = levels[height - 1][2 * index + 1]
                levels[height][index] = ops.tree_node_hash(
                    layer, tree, height, index, left, right)
            # The parent layer's cached WOTS link signs the *old* root;
            # drop it so the signer re-signs the corrupted root (a fresh
            # link that verifies) instead of failing on a stale one.
            drop_link = getattr(ops.cache, "drop_link", None)
            if drop_link is not None:
                drop_link(layer + 1, tree >> th,
                          tree & (params.tree_leaves - 1))
        self.calls_seen += 1
        self.fired = True
        mode = ("ancestors recomputed, still verifies"
                if self.consistent else "auth path left stale")
        return (f"flipped bit {self.bit} of cached node "
                f"level {self.level} index {sibling} in subtree "
                f"(layer {layer}, tree {tree}); {mode}")


def _parse_cache_fault(spec: str, parts: list[str]) -> CachedNodeFault:
    """Parse ``cache:flip[:level[:bit]][:benign]``."""
    fields = parts[2:]
    consistent = True
    if fields and fields[-1] == "benign":
        consistent = False
        fields = fields[:-1]
    kwargs: dict[str, int] = {}
    try:
        if len(fields) >= 1:
            kwargs["level"] = int(fields[0])
        if len(fields) >= 2:
            kwargs["bit"] = int(fields[1])
        if len(fields) > 2:
            raise ValueError("too many fields")
    except ValueError as exc:
        raise ConformanceError(f"bad fault spec {spec!r}: {exc}") from exc
    return CachedNodeFault(consistent=consistent, **kwargs)


def parse_fault(spec: str) -> BitFlipFault | CachedNodeFault:
    """Parse a fault spec: ``target:bitflip[:call_index[:bit]]`` for the
    hash taps, ``cache:flip[:level[:bit]][:benign]`` for the layer cache.
    """
    parts = spec.strip().split(":")
    if len(parts) >= 2 and parts[0] == "cache" and parts[1] == "flip":
        return _parse_cache_fault(spec, parts)
    if len(parts) < 2 or parts[1] != "bitflip":
        raise ConformanceError(
            f"unsupported fault spec {spec!r}; expected "
            "'thash:bitflip[:call_index[:bit]]', 'prf:bitflip[...]', or "
            "'cache:flip[:level[:bit]][:benign]'"
        )
    kwargs: dict[str, int] = {}
    try:
        if len(parts) >= 3:
            kwargs["call_index"] = int(parts[2])
        if len(parts) >= 4:
            kwargs["bit"] = int(parts[3])
        if len(parts) > 4:
            raise ValueError("too many fields")
    except ValueError as exc:
        raise ConformanceError(f"bad fault spec {spec!r}: {exc}") from exc
    return BitFlipFault(target=parts[0], **kwargs)
