"""Conformance & fault-injection subsystem.

Correctness in this repository is enforced by machinery, not eyeballs:

* :mod:`.oracle` — the cross-backend **differential oracle**: every
  signing path (backends, scheduler, async service) over one adversarial
  corpus, byte-compared against the reference scheme, divergences
  localized to the first diverging hop.
* :mod:`.kat` — **pinned KAT vectors** for 128s/128f/192s/256s under
  ``tests/vectors/``, with regeneration and drift checking.
* :mod:`.corpus` — seeded, stdlib-only **fuzz generation**: message edge
  cases, malformed protocol frames, corrupt keystore files.
* :mod:`.faults` — deterministic **bit-flip injection** into the
  tweakable-hash layer (the Genet-style SPHINCS+ fault model).
* :mod:`.tracing` — structured signing **traces** over the ``sphincs/``
  instrumentation hooks, for naming the hop where two runs diverge.
* :mod:`.chaos` — a seeded **flaky-TCP proxy** for service-tier chaos
  tests.
* :mod:`.fixtures` — the same machinery as a **pytest fixture library**.

CLI entry point: ``python -m repro conformance`` (see the README's
"Correctness: machine-checked" section).
"""

from .chaos import FlakyProxy
from .corpus import (corrupt_keystore_payloads, malformed_frames,
                     message_corpus)
from .faults import BitFlipFault, CachedNodeFault, flip_bit, parse_fault
from .kat import (KAT_SETS, check_kat, default_vectors_dir, generate_kat,
                  kat_corpus, load_kat)
from .oracle import (ConformanceReport, DifferentialOracle, Divergence,
                     PathResult, localize_divergence)
from .tracing import TraceHop, TraceRecorder, capture_trace, first_divergence

__all__ = [
    "BitFlipFault",
    "CachedNodeFault",
    "ConformanceReport",
    "DifferentialOracle",
    "Divergence",
    "FlakyProxy",
    "KAT_SETS",
    "PathResult",
    "TraceHop",
    "TraceRecorder",
    "capture_trace",
    "check_kat",
    "corrupt_keystore_payloads",
    "default_vectors_dir",
    "first_divergence",
    "flip_bit",
    "generate_kat",
    "kat_corpus",
    "load_kat",
    "localize_divergence",
    "malformed_frames",
    "message_corpus",
    "parse_fault",
]
