"""The cross-backend differential oracle.

Every execution strategy in this repository — the scalar reference
backend, the vectorized CPU backend, the modeled-GPU backend, the
:class:`~repro.runtime.scheduler.BatchScheduler` service layer, the
async :class:`~repro.service.server.SigningService`, and the unified
:mod:`repro.api` client facade over each transport (``client:local``,
``client:pooled``, ``client:tcp`` pinned to the v2 JSON wire, and
``client:tcp-v3`` over the binary framing with streamed sign-many —
both against a live server) — promises the same thing:
byte-identical SPHINCS+ signatures
in deterministic mode.  The
oracle *enforces* that promise.  It signs a shared adversarial corpus
(:func:`repro.testing.corpus.message_corpus`) on a reference scheme, runs
every registered path over the same corpus and keys, and reports:

* **matched** — signature bytes identical to the reference, and
* **verified** — the signature round-trips through ``verify``.

When a path diverges, the oracle names the first diverging hop: it
deserializes both signatures and walks the component layout in signing
order (randomizer -> FORS trees -> per-layer WOTS chains -> per-layer
Merkle auth paths), so a report says ``wots (layer 2)``, not "bytes
differ".  A diverging signature that still *verifies* would be a silently
wrong signature — the one outcome a conformance suite exists to make
impossible — and is flagged as undetected, which fails the run louder
than an ordinary mismatch.

Fault injection plugs in here: install a
:class:`~repro.testing.faults.BitFlipFault` on one backend and the oracle
must (a) catch the divergence, (b) name the stage, and (c) confirm the
faulty signature fails verification.  The reference path additionally
localizes the fault with the ``sphincs/`` tracing hooks
(:func:`repro.testing.tracing.capture_trace`).

A :class:`~repro.testing.faults.CachedNodeFault` runs a focused two-pass
flow instead: warm the vectorized backend's hypertree layer cache over
the corpus (pass 1 must byte-match), corrupt one cached subtree node,
then sign the corpus again — the divergence is provably the cached state.
A *consistent* strike produces signatures that still verify, so the
report must show ``verify_failed=False`` divergences: the fault-attack
class only the differential compare catches.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass, field

from ..errors import ConformanceError, SignatureFormatError, TuningError
from ..params import SphincsParams, get_params
from ..runtime.registry import available_backends, get_backend
from ..runtime.scheduler import BatchScheduler
from ..sphincs.signer import KeyPair, Sphincs
from .corpus import message_corpus
from .faults import BitFlipFault, CachedNodeFault
from .tracing import capture_trace, first_divergence

__all__ = ["Divergence", "PathResult", "ConformanceReport",
           "DifferentialOracle", "localize_divergence"]


@dataclass(frozen=True)
class Divergence:
    """One path/case pair whose signature differed from the reference.

    ``verify_failed`` records *how* the divergence was caught.  ``True``
    means plain verification already rejects the signature.  ``False`` is
    the more dangerous class from the SPHINCS+ fault-attack literature: a
    corrupted auth-path node used consistently in both the signature and
    the root computation yields a *valid-looking* signature that only the
    byte-level differential compare exposes — verification alone would
    have served it.  Either way the oracle caught it; the report just
    says which net did.
    """

    path: str      # e.g. "backend:vectorized"
    case: str      # corpus case name
    stage: str     # first diverging component, e.g. "wots (layer 2)"
    verify_failed: bool
    detail: str = ""

    def __str__(self) -> str:
        verdict = ("caught by verify" if self.verify_failed
                   else "verifies — caught by differential compare only "
                        "(fault-attack class)")
        text = f"{self.path} / {self.case}: diverges at {self.stage} ({verdict})"
        return f"{text} — {self.detail}" if self.detail else text


@dataclass
class PathResult:
    """One signing path's outcome over the whole corpus."""

    path: str
    count: int = 0
    matched: int = 0
    verified: int = 0
    elapsed_s: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)
    error: str = ""    # a path that failed outright (exception) reports here
    skipped: str = ""  # a path that cannot serve this parameter set

    @property
    def ok(self) -> bool:
        if self.skipped:
            return True  # a declared capability limit is not a divergence
        return (not self.divergences and not self.error
                and self.matched == self.count == self.verified)


@dataclass
class ConformanceReport:
    """Everything one oracle run established."""

    params: str
    cases: list[str]
    results: list[PathResult]
    fault_spec: str | None = None
    fault_fired: bool = False
    fault_hop: str | None = None  # trace-level localization, reference path

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def divergences(self) -> list[Divergence]:
        return [d for result in self.results for d in result.divergences]

    def first_divergence(self) -> Divergence | None:
        found = self.divergences
        return found[0] if found else None

    def render(self, title: str = "Conformance oracle") -> str:
        from ..analysis.reporting import format_table

        rows = []
        for result in self.results:
            status = ("skipped" if result.skipped
                      else "ok" if result.ok
                      else "ERROR" if result.error else "DIVERGED")
            rows.append([result.path, result.count, result.matched,
                         result.verified, round(result.elapsed_s, 3), status])
        lines = [format_table(
            ["path", "cases", "matched", "verified", "wall s", "status"],
            rows, title=f"{title} — {self.params}, {len(self.cases)} cases",
        )]
        for result in self.results:
            if result.error:
                lines.append(f"  {result.path}: {result.error}")
            elif result.skipped:
                lines.append(f"  {result.path}: skipped — {result.skipped}")
        for divergence in self.divergences:
            lines.append(f"  {divergence}")
        if self.fault_spec is not None:
            fired = "fired" if self.fault_fired else "NEVER FIRED"
            lines.append(f"  injected fault {self.fault_spec}: {fired}")
            if self.fault_hop is not None:
                if (self.fault_spec or "").startswith("cache:"):
                    lines.append(f"  cache strike: {self.fault_hop}")
                else:
                    lines.append(
                        f"  reference trace diverges at {self.fault_hop}")
        return "\n".join(lines)


def localize_divergence(scheme: Sphincs, expected: bytes,
                        actual: bytes) -> str:
    """Name the first diverging component of two signature blobs.

    Components are compared in signing order, so the answer is the first
    *hop* at which the two computations parted ways: ``randomizer``,
    ``fors (tree k ...)``, ``wots (layer d)``, or ``merkle (layer d auth
    path)``.
    """
    if len(expected) != len(actual):
        return f"length ({len(actual)} bytes, expected {len(expected)})"
    try:
        rand_e, fors_e, ht_e = scheme.deserialize(expected)
        rand_a, fors_a, ht_a = scheme.deserialize(actual)
    except SignatureFormatError as exc:
        return f"format ({exc})"
    if rand_e != rand_a:
        return "randomizer"
    for tree, ((sec_e, path_e), (sec_a, path_a)) in enumerate(
            zip(fors_e, fors_a)):
        if sec_e != sec_a:
            return f"fors (tree {tree} revealed secret)"
        if path_e != path_a:
            return f"fors (tree {tree} auth path)"
    for layer, ((chains_e, path_e), (chains_a, path_a)) in enumerate(
            zip(ht_e, ht_a)):
        if chains_e != chains_a:
            return f"wots (layer {layer})"
        if path_e != path_a:
            return f"merkle (layer {layer} auth path)"
    return "none (byte-identical)"


class DifferentialOracle:
    """Run every signing path over one corpus and compare the bytes.

    Parameters
    ----------
    params:
        Parameter set under test.
    backends:
        Backend names to include; defaults to every registered backend,
        so a backend added via ``register_backend`` joins the oracle with
        no further wiring.
    corpus:
        ``(case, message)`` pairs; defaults to :func:`message_corpus`.
    include_scheduler / include_service:
        Also push the corpus through the ``BatchScheduler`` layer (per
        backend) and the async ``SigningService`` (vectorized).  When the
        ``pooled`` backend is in play, the service pass additionally runs
        with a ``service_workers``-process worker pool behind the sharded
        dispatcher, proving the whole multi-core tier byte-identical.
    include_clients:
        Also drive the corpus through the :mod:`repro.api` facade on
        every transport: ``client:local`` (in-process scheduler),
        ``client:pooled`` (worker pool, when ``pooled`` is among the
        backends), ``client:tcp`` (an AsyncClient pinned to the v2 JSON
        wire), and ``client:tcp-v3`` (the same client over v3 binary
        frames with streamed sign-many) — both against a live server.
        Each path byte-compares against the reference and additionally
        round-trips a ``verify`` call through the same facade.
    include_ledger:
        Also push the corpus through the transparency-log pipeline
        (``ledger:audit``): append every message to a disk-backed
        :class:`~repro.ledger.service.LedgerService`, byte-compare the
        batch signatures embedded in the committed entries against the
        reference, check every receipt's inclusion proof client-side,
        and replay the log with :func:`repro.ledger.run_audit` in
        deterministic mode — each checkpoint signature must byte-match
        a reference re-sign of the same tree head.
    fault / fault_target:
        Optional :class:`BitFlipFault` installed on *fault_target*'s
        direct-backend pass — the oracle then demonstrates detection.
    """

    def __init__(self, params: SphincsParams | str = "128f",
                 backends: list[str] | None = None,
                 corpus: list[tuple[str, bytes]] | None = None,
                 seed: int = 0, smoke: bool = False,
                 include_scheduler: bool = True,
                 include_service: bool = True,
                 include_clients: bool = True,
                 include_ledger: bool = True,
                 service_backend: str = "vectorized",
                 service_workers: int = 2,
                 fault: BitFlipFault | CachedNodeFault | None = None,
                 fault_target: str = "scalar"):
        self.params = get_params(params) if isinstance(params, str) else params
        self.backends = (list(backends) if backends is not None
                         else list(available_backends()))
        self.corpus = (corpus if corpus is not None
                       else message_corpus(seed=seed, smoke=smoke))
        self.include_scheduler = include_scheduler
        self.include_service = include_service
        self.include_clients = include_clients
        self.include_ledger = include_ledger
        self.service_backend = service_backend
        self.service_workers = service_workers
        self.fault = fault
        self.fault_target = fault_target

    # ------------------------------------------------------------------
    def run(self) -> ConformanceReport:
        scheme = Sphincs(self.params, deterministic=True)
        keys = scheme.keygen(seed=bytes(3 * self.params.n))

        reference = PathResult(path="reference")
        expected: dict[str, bytes] = {}
        started = time.perf_counter()
        for case, message in self.corpus:
            signature = scheme.sign(message, keys)
            expected[case] = signature
            reference.count += 1
            reference.matched += 1
            if scheme.verify(message, signature, keys.public):
                reference.verified += 1
            else:
                reference.divergences.append(Divergence(
                    path="reference", case=case, stage="verify",
                    verify_failed=True,
                    detail="reference signature failed verification",
                ))
        reference.elapsed_s = time.perf_counter() - started

        results = [reference]
        if isinstance(self.fault, CachedNodeFault):
            # Focused two-pass flow: warm pass, cache strike, faulted
            # pass.  The service/scheduler/client tiers share the same
            # backend code, so the cached-state property is established
            # once, where the cache lives.
            cached_results, fault_hop = self._run_cached_fault(
                scheme, keys, expected)
            results.extend(cached_results)
            return ConformanceReport(
                params=self.params.name,
                cases=[case for case, _ in self.corpus],
                results=results,
                fault_spec=self.fault.spec,
                fault_fired=self.fault.fired,
                fault_hop=fault_hop,
            )
        fault_fired = False
        for name in self.backends:
            fault = self.fault if name == self.fault_target else None
            results.append(self._run_backend(name, scheme, keys, expected,
                                             fault))
            if fault is not None:
                fault_fired = fault.fired
        if self.fault is None:
            results.extend(self._run_warm_paths(scheme, keys, expected))
        if self.include_scheduler:
            results.extend(self._run_scheduler(scheme, keys, expected))
        if self.include_service:
            results.append(asyncio.run(
                self._run_service(scheme, keys, expected)))
            if "pooled" in self.backends:
                # The multi-core execution tier must honor the same
                # byte-identical contract end to end: async service ->
                # sharded dispatcher -> worker pool -> inner backend.
                results.append(asyncio.run(
                    self._run_service(scheme, keys, expected,
                                      workers=self.service_workers)))
        if self.include_clients:
            # The unified facade must uphold the same contract through
            # every transport it abstracts over.
            results.append(self._run_client(
                "client:local", scheme, keys, expected,
                backend=self.service_backend))
            if "pooled" in self.backends:
                results.append(self._run_client(
                    "client:pooled", scheme, keys, expected,
                    backend="pooled",
                    backend_options={"pooled":
                                     {"workers": self.service_workers}}))
            # Both wire generations must produce byte-identical output:
            # v2 JSON lines pinned explicitly, and the v3 binary framing
            # with its streamed sign-many.
            results.append(asyncio.run(
                self._run_client_tcp(scheme, keys, expected, version=2)))
            results.append(asyncio.run(
                self._run_client_tcp(scheme, keys, expected, version=3)))
            # The cluster tier joins the same contract: placement and
            # failover must never change a byte of signature output.
            results.append(asyncio.run(
                self._run_client_cluster(scheme, keys, expected)))
            results.append(asyncio.run(
                self._run_client_cluster(scheme, keys, expected,
                                         chaos=True)))
        if self.include_ledger and self.fault is None:
            results.append(asyncio.run(
                self._run_ledger(scheme, keys, expected)))

        fault_hop = None
        if self.fault is not None and self.corpus:
            # Localize on the reference path via the sphincs/ trace hooks:
            # same fault parameters, fresh counters, first corpus message.
            replica = dataclasses.replace(self.fault)
            case, message = self.corpus[0]
            clean = capture_trace(self.params, message, keys)
            faulted = capture_trace(self.params, message, keys, fault=replica)
            hit = first_divergence(clean, faulted)
            if hit is not None:
                index, _, hop = hit
                fault_hop = f"hop {index}: {hop.stage}[{hop.label}]"

        return ConformanceReport(
            params=self.params.name,
            cases=[case for case, _ in self.corpus],
            results=results,
            fault_spec=self.fault.spec if self.fault is not None else None,
            fault_fired=fault_fired,
            fault_hop=fault_hop,
        )

    # ------------------------------------------------------------------
    def _compare(self, result: PathResult, scheme: Sphincs, keys: KeyPair,
                 expected: dict[str, bytes],
                 produced: dict[str, bytes],
                 corpus: list[tuple[str, bytes]] | None = None) -> None:
        for case, message in (self.corpus if corpus is None else corpus):
            result.count += 1
            signature = produced.get(case)
            if signature is None:
                result.divergences.append(Divergence(
                    path=result.path, case=case, stage="missing",
                    verify_failed=True, detail="path produced no signature",
                ))
                continue
            verifies = scheme.verify(message, signature, keys.public)
            if verifies:
                result.verified += 1
            if signature == expected[case]:
                result.matched += 1
                if not verifies:
                    result.divergences.append(Divergence(
                        path=result.path, case=case, stage="verify",
                        verify_failed=True,
                        detail="matching signature failed verification",
                    ))
            else:
                stage = localize_divergence(scheme, expected[case], signature)
                result.divergences.append(Divergence(
                    path=result.path, case=case, stage=stage,
                    verify_failed=not verifies,
                ))

    def _run_backend(self, name: str, scheme: Sphincs, keys: KeyPair,
                     expected: dict[str, bytes],
                     fault: BitFlipFault | None) -> PathResult:
        result = PathResult(path=f"backend:{name}")
        started = time.perf_counter()
        try:
            backend = get_backend(name, self.params, deterministic=True)
            messages = [message for _, message in self.corpus]
            if fault is not None:
                get_context = getattr(backend, "hash_context", None)
                if get_context is None:
                    raise ConformanceError(
                        f"backend {name!r} does not expose hash_context(); "
                        "cannot install a fault on it (see "
                        "SigningBackend.hash_context)"
                    )
                try:
                    context = get_context()
                except Exception as exc:  # declared untappable
                    raise ConformanceError(
                        f"cannot install fault on backend {name!r}: {exc}"
                    ) from exc
                with fault.install(context):
                    signatures = backend.sign_batch(messages, keys).signatures
            else:
                signatures = backend.sign_batch(messages, keys).signatures
            produced = {case: signature for (case, _), signature
                        in zip(self.corpus, signatures)}
            self._compare(result, scheme, keys, expected, produced)
        except ConformanceError:
            raise  # harness misconfiguration, not a conformance finding
        except TuningError as exc:
            # The backend declares it cannot serve this parameter set
            # (e.g. modeled-gpu: a 128s FORS tree exceeds the thread
            # budget).  A stated capability limit is not a divergence.
            result.skipped = str(exc)
        except Exception as exc:  # noqa: BLE001 — a path failing is a finding
            result.error = f"{type(exc).__name__}: {exc}"
        result.elapsed_s = time.perf_counter() - started
        return result

    def _run_warm_paths(self, scheme: Sphincs, keys: KeyPair,
                        expected: dict[str, bytes]) -> list[PathResult]:
        """Cache-enabled byte-identity passes.

        ``backend:scalar+layercache`` runs the reference backend with the
        hypertree layer cache switched on (it is off by default there);
        ``backend:vectorized+warm`` signs the corpus twice on one backend
        instance and compares the *second* pass, whose subtrees and
        upper-layer WOTS link signatures come out of a warm cache.  Both
        must stay byte-identical to the cold reference.
        """
        results = []
        messages = [message for _, message in self.corpus]
        if "scalar" in self.backends:
            result = PathResult(path="backend:scalar+layercache")
            started = time.perf_counter()
            try:
                backend = get_backend("scalar", self.params,
                                      deterministic=True,
                                      cache_budget_mb=32.0)
                signatures = backend.sign_batch(messages, keys).signatures
                produced = {case: signature for (case, _), signature
                            in zip(self.corpus, signatures)}
                self._compare(result, scheme, keys, expected, produced)
            except Exception as exc:  # noqa: BLE001
                result.error = f"{type(exc).__name__}: {exc}"
            result.elapsed_s = time.perf_counter() - started
            results.append(result)
        if "vectorized" in self.backends:
            result = PathResult(path="backend:vectorized+warm")
            started = time.perf_counter()
            try:
                backend = get_backend("vectorized", self.params,
                                      deterministic=True)
                backend.sign_batch(messages, keys)  # warms the cache
                signatures = backend.sign_batch(messages, keys).signatures
                produced = {case: signature for (case, _), signature
                            in zip(self.corpus, signatures)}
                self._compare(result, scheme, keys, expected, produced)
            except Exception as exc:  # noqa: BLE001
                result.error = f"{type(exc).__name__}: {exc}"
            result.elapsed_s = time.perf_counter() - started
            results.append(result)
        return results

    def _run_cached_fault(self, scheme: Sphincs, keys: KeyPair,
                          expected: dict[str, bytes]
                          ) -> tuple[list[PathResult], str | None]:
        """Warm the layer cache, strike one cached node, sign again.

        Returns the warm-pass and faulted-pass results plus the strike's
        detail string (reported as the fault localization).  The warm
        pass must byte-match — otherwise the faulted pass would prove
        nothing about the cache.
        """
        fault = self.fault
        messages = [message for _, message in self.corpus]
        warm_result = PathResult(path="backend:vectorized+warm")
        fault_result = PathResult(path="backend:vectorized+cached-fault")
        detail = None
        started = time.perf_counter()
        try:
            backend = get_backend("vectorized", self.params,
                                  deterministic=True)
            signatures = backend.sign_batch(messages, keys).signatures
            produced = {case: signature for (case, _), signature
                        in zip(self.corpus, signatures)}
            self._compare(warm_result, scheme, keys, expected, produced)
            warm_result.elapsed_s = time.perf_counter() - started
            if warm_result.divergences:
                # The clean warm pass is already wrong; a cache strike on
                # top of it would be meaningless.  fired stays False, so
                # the CLI reports the fault as never having fired.
                return [warm_result], None
            # Strike the cached subtree that the first corpus message's
            # hypertree walk traverses, then serve the corrupted cache.
            started = time.perf_counter()
            task = scheme.prepare(self.corpus[0][1], keys)
            detail = fault.apply(backend._ops(keys), task.idx_tree)
            signatures = backend.sign_batch(messages, keys).signatures
            produced = {case: signature for (case, _), signature
                        in zip(self.corpus, signatures)}
            self._compare(fault_result, scheme, keys, expected, produced)
            if fault.consistent and not fault_result.divergences:
                fault_result.divergences.append(Divergence(
                    path=fault_result.path, case=self.corpus[0][0],
                    stage="cache", verify_failed=False,
                    detail="consistent cached-node flip produced no "
                           "divergence — the strike missed the signing "
                           "path",
                ))
        except Exception as exc:  # noqa: BLE001
            fault_result.error = f"{type(exc).__name__}: {exc}"
        fault_result.elapsed_s = time.perf_counter() - started
        return [warm_result, fault_result], detail

    def _run_scheduler(self, scheme: Sphincs, keys: KeyPair,
                       expected: dict[str, bytes]) -> list[PathResult]:
        results = []
        for name in self.backends:
            result = PathResult(path=f"scheduler:{name}")
            started = time.perf_counter()
            try:
                scheduler = BatchScheduler(
                    target_batch_size=max(2, len(self.corpus) // 2),
                    backend=name, deterministic=True)
                tickets = scheduler.run(
                    [message for _, message in self.corpus],
                    params=self.params.name, backend=name)
                produced = {case: scheduler.claim(ticket)
                            for (case, _), ticket
                            in zip(self.corpus, tickets)}
                self._compare(result, scheme, keys, expected, produced)
            except TuningError as exc:
                result.skipped = str(exc)
            except Exception as exc:  # noqa: BLE001
                result.error = f"{type(exc).__name__}: {exc}"
            result.elapsed_s = time.perf_counter() - started
            results.append(result)
        return results

    def _client_keystore(self):
        """A keystore whose 'oracle' tenant key equals the reference key
        (same deterministic seed), so facade signatures byte-compare."""
        from ..service import Keystore

        keystore = Keystore()
        keystore.add_tenant("oracle", self.params.name)
        keystore.generate_key("oracle", "default",
                              seed=bytes(3 * self.params.n))
        return keystore

    def _client_compare(self, result: PathResult, scheme: Sphincs,
                        keys: KeyPair, expected: dict[str, bytes],
                        corpus: list[tuple[str, bytes]],
                        signed: list, verdict) -> None:
        produced = {case: item.signature
                    for (case, _), item in zip(corpus, signed)}
        self._compare(result, scheme, keys, expected, produced,
                      corpus=corpus)
        # The facade's verify must accept what the facade signed —
        # the served-verification half of the contract.
        if corpus and not verdict.valid:
            result.divergences.append(Divergence(
                path=result.path, case=corpus[0][0], stage="client-verify",
                verify_failed=True,
                detail="facade verify rejected a facade signature",
            ))

    def _run_client(self, label: str, scheme: Sphincs, keys: KeyPair,
                    expected: dict[str, bytes], backend: str,
                    backend_options: dict | None = None) -> PathResult:
        from ..api import LocalClient

        result = PathResult(path=label)
        started = time.perf_counter()
        client = None
        try:
            client = LocalClient(self._client_keystore(), backend=backend,
                                 deterministic=True,
                                 backend_options=backend_options)
            signed = client.sign_many(
                "oracle", [message for _, message in self.corpus])
            case, message = self.corpus[0]
            verdict = client.verify("oracle", message, signed[0].signature)
            self._client_compare(result, scheme, keys, expected,
                                 self.corpus, signed, verdict)
        except TuningError as exc:
            result.skipped = str(exc)
        except Exception as exc:  # noqa: BLE001 — a path failing is a finding
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            if client is not None:
                client.close()
        result.elapsed_s = time.perf_counter() - started
        return result

    async def _run_client_tcp(self, scheme: Sphincs, keys: KeyPair,
                              expected: dict[str, bytes],
                              version: int = 3) -> PathResult:
        from ..api import AsyncClient
        from ..service import SigningServer, SigningService, protocol

        result = PathResult(path="client:tcp" if version < 3
                            else "client:tcp-v3")
        started = time.perf_counter()
        # The wire can only frame messages up to the per-mode message
        # bound (the full corpus includes a 1 MiB case); skipping
        # oversized cases is a stated transport bound, not a divergence.
        budget = (protocol.MAX_MESSAGE_BYTES_V3 if version >= 3
                  else protocol.MAX_MESSAGE_BYTES)
        corpus = [(case, message) for case, message in self.corpus
                  if len(message) <= budget]
        server = None
        client = None
        try:
            service = SigningService(
                self._client_keystore(), backend=self.service_backend,
                target_batch_size=max(2, len(corpus) // 2),
                max_wait_s=0.05, max_pending=max(64, 2 * len(corpus)),
                deterministic=True)
            server = SigningServer(service, port=0)
            await server.start()
            client = await AsyncClient.connect(port=server.port,
                                               version=version)
            signed = await client.sign_many(
                "oracle", [message for _, message in corpus])
            case, message = corpus[0]
            verdict = await client.verify("oracle", message,
                                          signed[0].signature)
            self._client_compare(result, scheme, keys, expected, corpus,
                                 signed, verdict)
        except Exception as exc:  # noqa: BLE001
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            if client is not None:
                await client.close()
            if server is not None:
                await server.stop()
        result.elapsed_s = time.perf_counter() - started
        return result

    async def _run_client_cluster(self, scheme: Sphincs, keys: KeyPair,
                                  expected: dict[str, bytes],
                                  chaos: bool = False) -> PathResult:
        """Facade -> cluster router -> 2 signing nodes, byte-compared.

        With ``chaos=True`` the node owning the "oracle" tenant is
        killed halfway through the corpus: the router must re-home the
        shard onto the surviving node and — because both nodes hold
        identically seeded keys and sign deterministically — the
        failover signatures must stay byte-identical too.
        """
        from ..api import AsyncClusterClient
        from ..cluster import LocalCluster
        from ..service import SigningService, protocol

        result = PathResult(path="client:cluster-chaos" if chaos
                            else "client:cluster")
        started = time.perf_counter()
        budget = protocol.MAX_MESSAGE_BYTES_V3
        corpus = [(case, message) for case, message in self.corpus
                  if len(message) <= budget]
        cluster = None
        client = None
        try:
            def factory() -> SigningService:
                return SigningService(
                    self._client_keystore(), backend=self.service_backend,
                    target_batch_size=max(2, len(corpus) // 2),
                    max_wait_s=0.05,
                    max_pending=max(64, 2 * len(corpus)),
                    deterministic=True)

            cluster = await LocalCluster(
                [factory, factory], health_interval_s=0.05).start()
            client = await AsyncClusterClient.connect(port=cluster.port)
            messages = [message for _, message in corpus]
            if chaos:
                half = max(1, len(messages) // 2)
                signed = list(await client.sign_many(
                    "oracle", messages[:half]))
                # Kill the shard's current owner between batches: the
                # second half must come back from the failover node.
                await cluster.kill_node(cluster.owner("oracle"))
                signed.extend(await client.sign_many(
                    "oracle", messages[half:]))
            else:
                signed = list(await client.sign_many("oracle", messages))
            case, message = corpus[0]
            verdict = await client.verify("oracle", message,
                                          signed[0].signature)
            self._client_compare(result, scheme, keys, expected, corpus,
                                 signed, verdict)
        except Exception as exc:  # noqa: BLE001
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            if client is not None:
                await client.close()
            if cluster is not None:
                await cluster.stop()
        result.elapsed_s = time.perf_counter() - started
        return result

    async def _run_service(self, scheme: Sphincs, keys: KeyPair,
                           expected: dict[str, bytes],
                           workers: int = 0) -> PathResult:
        from ..service import Keystore, SigningService

        label = (f"service:pooled[{workers}]" if workers
                 else f"service:{self.service_backend}")
        result = PathResult(path=label)
        started = time.perf_counter()
        service = None
        try:
            keystore = Keystore()
            keystore.add_tenant("oracle", self.params.name)
            keystore.generate_key("oracle", "default",
                                  seed=bytes(3 * self.params.n))
            service = SigningService(
                keystore, backend=self.service_backend,
                target_batch_size=max(2, len(self.corpus) // 2),
                max_wait_s=0.05, max_pending=max(64, 2 * len(self.corpus)),
                deterministic=True, workers=workers)
            outcomes = await asyncio.gather(*[
                service.sign(message, "oracle")
                for _, message in self.corpus])
            produced = {case: outcome.signature for (case, _), outcome
                        in zip(self.corpus, outcomes)}
            self._compare(result, scheme, keys, expected, produced)
        except Exception as exc:  # noqa: BLE001
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            if service is not None:
                await service.drain()
                service.close()
        result.elapsed_s = time.perf_counter() - started
        return result

    async def _run_ledger(self, scheme: Sphincs, keys: KeyPair,
                          expected: dict[str, bytes]) -> PathResult:
        """Corpus -> transparency log -> differential audit.

        Three nets, in order: the batch signature embedded in each
        committed entry must byte-match the reference; every
        acknowledged receipt must yield an inclusion proof the
        client-side checker accepts (the pipeline's core invariant);
        and the deterministic replay audit over the raw on-disk bytes
        must re-sign every checkpoint body to the identical signature.
        """
        import tempfile
        from pathlib import Path

        from ..api import LocalClient, verify_inclusion
        from ..ledger import LedgerService, decode_entry, run_audit

        result = PathResult(path="ledger:audit")
        started = time.perf_counter()
        client = None
        try:
            with tempfile.TemporaryDirectory(
                    prefix="repro-oracle-ledger-") as tmp:
                root = Path(tmp) / "log"
                keystore = self._client_keystore()
                client = LocalClient(keystore, backend=self.service_backend,
                                     deterministic=True)
                ledger = LedgerService(
                    client, tenant="oracle", root=root,
                    batch_size=max(2, len(self.corpus) // 2))
                receipts = await ledger.append_many(
                    [message for _, message in self.corpus])
                produced = {case: decode_entry(receipt.entry)[1]
                            for (case, _), receipt
                            in zip(self.corpus, receipts)}
                self._compare(result, scheme, keys, expected, produced)
                for (case, _), receipt in zip(self.corpus, receipts):
                    proof = ledger.prove(receipt.index,
                                         receipt.checkpoint.size)
                    if not verify_inclusion(client, proof):
                        result.divergences.append(Divergence(
                            path=result.path, case=case, stage="inclusion",
                            verify_failed=True,
                            detail=f"acknowledged entry {receipt.index} "
                                   "has no verifying inclusion proof"))
                await ledger.close()
                report = run_audit(root, keystore, tenant="oracle",
                                   deterministic=True)
                if not report["ok"]:
                    for problem in report["problems"]:
                        result.divergences.append(Divergence(
                            path=result.path, case="<audit>", stage="audit",
                            verify_failed=True, detail=problem))
                elif report["signatures_matched"] != report["checkpoints"]:
                    result.divergences.append(Divergence(
                        path=result.path, case="<audit>", stage="audit",
                        verify_failed=False,
                        detail=f"only {report['signatures_matched']} of "
                               f"{report['checkpoints']} checkpoint "
                               "signatures matched the reference"))
        except TuningError as exc:
            result.skipped = str(exc)
        except Exception as exc:  # noqa: BLE001
            result.error = f"{type(exc).__name__}: {exc}"
        finally:
            if client is not None:
                client.close()
        result.elapsed_s = time.perf_counter() - started
        return result
