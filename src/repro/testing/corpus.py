"""Seeded, stdlib-only case generation for the conformance subsystem.

Three generators live here:

* :func:`message_corpus` — the adversarial message set the differential
  oracle feeds every signing path: the empty message, single bytes, long
  runs, repeated blocks, a bit-flipped twin of a random message (byte
  streams that differ in exactly one bit must produce unrelated
  signatures), and — outside smoke mode — a 1 MiB payload plus extra
  random lengths.
* :func:`malformed_frames` — hostile wire lines for the service protocol:
  invalid JSON, wrong top-level types, missing/ill-typed fields, invalid
  base64, absurd deadlines.  Every one must come back as a structured
  ``ok: false`` response, never as a dropped connection or a traceback.
* :func:`corrupt_keystore_payloads` — tenant-file corruptions (truncated
  JSON, wrong types, bad hex, short key material, name mismatches) that
  the keystore must quarantine with a typed error.

Everything is driven by ``random.Random(seed)`` — no global RNG, no
wall-clock — so a failing case reproduces from its seed alone.
"""

from __future__ import annotations

import json
import random

__all__ = [
    "message_corpus",
    "malformed_frames",
    "corrupt_keystore_payloads",
]

#: Size of the large-payload case in the full (non-smoke) corpus.
LARGE_MESSAGE_BYTES = 1 << 20


def message_corpus(seed: int = 0,
                   smoke: bool = False) -> list[tuple[str, bytes]]:
    """Named ``(case, message)`` pairs for the differential oracle."""
    rng = random.Random(seed)
    base = rng.randbytes(256)
    twin = bytearray(base)
    twin[rng.randrange(len(twin))] ^= 1 << rng.randrange(8)
    cases = [
        ("empty", b""),
        ("one-zero-byte", b"\x00"),
        ("one-ff-byte", b"\xff"),
        ("ascii", b"conformance corpus v1"),
        ("repeated-block", bytes(range(32)) * 8),
        ("random-256", base),
        ("bitflip-twin-256", bytes(twin)),
    ]
    if not smoke:
        cases += [
            ("all-ff-4096", b"\xff" * 4096),
            ("random-4096", rng.randbytes(4096)),
            ("large-1MiB", rng.randbytes(LARGE_MESSAGE_BYTES)),
        ]
        for i in range(3):
            length = rng.randrange(1, 2048)
            cases.append((f"random-len-{length}-{i}", rng.randbytes(length)))
    return cases


def _strip_newlines(blob: bytes) -> bytes:
    """Keep a random blob to a single wire frame."""
    return blob.replace(b"\n", b"?").replace(b"\r", b"?")


def malformed_frames(seed: int = 0,
                     extra_random: int = 8) -> list[tuple[str, bytes]]:
    """Named hostile protocol lines (each already ``\\n``-terminated)."""
    rng = random.Random(seed)
    frames: list[tuple[str, bytes]] = [
        ("not-json", b"this is not json\n"),
        ("bare-string", b'"sign"\n'),
        ("bare-number", b"42\n"),
        ("json-array", b'[{"op": "ping"}]\n'),
        ("null", b"null\n"),
        ("truncated-object", b'{"op": "sign", "tenant": "acm\n'),
        ("unknown-op", b'{"op": "destroy-all-keys", "id": 1}\n'),
        ("numeric-op", b'{"op": 7, "id": 2}\n'),
        ("sign-missing-tenant", b'{"op": "sign", "message": "aGk="}\n'),
        ("sign-numeric-tenant",
         b'{"op": "sign", "tenant": 9, "message": "aGk="}\n'),
        ("sign-message-not-base64",
         b'{"op": "sign", "tenant": "demo", "message": "!!%%"}\n'),
        ("sign-message-not-string",
         b'{"op": "sign", "tenant": "demo", "message": [1, 2]}\n'),
        ("sign-negative-deadline",
         b'{"op": "sign", "tenant": "demo", "message": "aGk=", '
         b'"deadline_ms": -5}\n'),
        ("sign-string-deadline",
         b'{"op": "sign", "tenant": "demo", "message": "aGk=", '
         b'"deadline_ms": "soon"}\n'),
        ("invalid-utf8", b'{"op": "ping"\xff\xfe}\n'),
    ]
    for i in range(extra_random):
        blob = _strip_newlines(rng.randbytes(rng.randrange(1, 200)))
        frames.append((f"random-bytes-{i}", blob + b"\n"))
    return frames


def corrupt_keystore_payloads(seed: int = 0) -> list[tuple[str, str]]:
    """Named corrupt tenant-file bodies; file name should be ``acme.json``."""
    rng = random.Random(seed)
    n = 16  # 128f component size; wrong sizes below are relative to it
    good_key = {f: "00" * n for f in
                ("sk_seed", "sk_prf", "pk_seed", "pk_root")}

    def payload(**overrides) -> str:
        body = {"tenant": "acme", "params": "SPHINCS+-128f",
                "keys": {"default": dict(good_key)}}
        body.update(overrides)
        return json.dumps(body)

    truncated = payload()[: rng.randrange(1, 40)]
    return [
        ("empty-file", ""),
        ("truncated-json", truncated),
        ("not-json", "## not a tenant file ##"),
        ("json-array", "[1, 2, 3]"),
        ("missing-params", json.dumps({"tenant": "acme", "keys": {}})),
        ("missing-keys", json.dumps(
            {"tenant": "acme", "params": "SPHINCS+-128f"})),
        ("unknown-params", payload(params="SPHINCS+-4096q")),
        ("tenant-name-mismatch", payload(tenant="evil")),
        ("tenant-name-traversal", payload(tenant="../escape")),
        ("keys-not-object", payload(keys=["default"])),
        ("key-fields-missing", payload(keys={"default": {"sk_seed": "00" * n}})),
        ("key-not-hex", payload(keys={"default": {
            **good_key, "sk_seed": "zz" * n}})),
        ("key-wrong-length", payload(keys={"default": {
            **good_key, "pk_root": "00" * (n - 2)}})),
    ]
