"""Observability: tracing, metrics, and structured logging for the stack.

Three small, dependency-free subsystems, each usable on its own:

:mod:`.trace`
    Request tracing.  A :class:`~.trace.TraceContext` (trace id + span
    id) is created at the client facade, propagated by ``contextvars``
    where the call chain is synchronous and carried explicitly (wire
    field, batcher entry, worker message) where it is not, and every
    tier emits :class:`~.trace.Span` records into a shared
    :class:`~.trace.Tracer` — a bounded in-memory ring with an optional
    JSONL export.  ``repro trace`` renders the critical path.
:mod:`.metrics`
    A :class:`~.metrics.MetricsRegistry` of counters, gauges, and
    fixed-bucket histograms — the single sink behind
    :class:`~repro.service.telemetry.Telemetry` — with a Prometheus
    text exposition and an optional stdlib HTTP scrape endpoint.
:mod:`.log`
    JSON-lines structured logging with trace-id correlation, adopted at
    the service's accept/shed/crash/respawn/invalidation points.

Everything is off by default and every hook sits behind an ``is None``
check, so the hot paths stay hook-free until an operator opts in.
"""

from .log import JsonLogger, configure_logging, get_logger, logging_enabled
from .metrics import (MetricsRegistry, MetricsServer, parse_prometheus,
                      render_prometheus)
from .trace import (Span, StageAggregator, TraceContext, Tracer,
                    current_trace, load_spans, new_span_id, new_trace_id,
                    render_critical_path, start_trace, use_trace)

__all__ = [
    "JsonLogger", "MetricsRegistry", "MetricsServer", "Span",
    "StageAggregator", "TraceContext", "Tracer", "configure_logging",
    "current_trace", "get_logger", "load_spans", "logging_enabled",
    "new_span_id", "new_trace_id", "parse_prometheus",
    "render_critical_path", "render_prometheus", "start_trace",
    "use_trace",
]
