"""The unified metrics registry: counters, gauges, histograms, scraping.

Before this module the service had three parallel metric mechanisms —
``Telemetry``'s per-tenant counters, the ``set_pool_provider`` callback,
and the ``set_cache_provider`` callback — each with its own snapshot
shape.  :class:`MetricsRegistry` is the single sink behind all of them:
``Telemetry`` dual-writes its counters here, and the provider callbacks
become *collectors* (run guarded at scrape time), so one registry holds
everything a dashboard needs.

Exposed two ways:

* the ``metrics`` protocol verb returns :meth:`MetricsRegistry.collect`
  (JSON) or the Prometheus text exposition;
* ``--metrics-port`` starts a :class:`MetricsServer` — a stdlib
  ``http.server`` thread answering ``GET /metrics`` with the standard
  ``text/plain; version=0.0.4`` exposition, scrapeable by a stock
  Prometheus agent with zero dependencies on our side.

:func:`parse_prometheus` is the matching stdlib-only parser, used by the
CI smoke job (and tests) to prove the exposition round-trips.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Iterable

__all__ = ["MetricsRegistry", "MetricsServer", "parse_prometheus",
           "render_prometheus"]

#: Default latency-histogram bucket bounds, in milliseconds.  Fixed at
#: registry construction so every scrape sees the same schema.
LATENCY_BUCKETS_MS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                      500.0, 1000.0, 2500.0, 5000.0)

#: Batch sizes worth distinguishing (the service caps frames well below
#: the top bound; the +Inf bucket catches the rest).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Base: one (name, label set) series.  All mutation under the
    registry's lock — see :class:`MetricsRegistry`."""

    kind = "untyped"

    def __init__(self, lock: threading.Lock):
        self._lock = lock


class Counter(_Metric):
    kind = "counter"

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, lock: threading.Lock,
                 buckets: Iterable[float] = LATENCY_BUCKETS_MS):
        super().__init__(lock)
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le bound, cumulative count)`` pairs, +Inf last."""
        pairs = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.counts[-1]))
        return pairs


class MetricsRegistry:
    """Process-wide named metrics with labels, collectors, and exports.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create a series for a
    (name, labels) pair; the same call from two threads returns the same
    object.  *Collectors* are callables run at scrape time (each guarded
    — a raising collector is counted in ``repro_collector_errors_total``
    instead of poisoning the scrape), which is how the pool and cache
    stat providers feed gauges without a background thread.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._series: dict[tuple[str, tuple], _Metric] = {}
        self._help: dict[str, str] = {}
        self._kinds: dict[str, str] = {}
        self._collectors: list[tuple[str, Callable[["MetricsRegistry"],
                                                   None]]] = []

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, factory, help_: str,
             labels: dict[str, str]) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered != kind:
                raise ValueError(
                    f"metric {name!r} is a {registered}, not a {kind}")
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = factory()
                self._kinds[name] = kind
                if help_ or name not in self._help:
                    self._help[name] = help_
            return series

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(self._lock),
                         help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(self._lock),
                         help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS_MS,
                  **labels: str) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(self._lock, buckets),
                         help, labels)

    def add_collector(self, name: str,
                      collector: Callable[["MetricsRegistry"], None]
                      ) -> None:
        """Run *collector(registry)* at every scrape; errors are counted
        (``repro_collector_errors_total{collector=name}``), not raised."""
        with self._lock:
            self._collectors.append((name, collector))

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for name, collector in collectors:
            try:
                collector(self)
            except Exception as exc:  # noqa: BLE001 — scrape must survive
                self.counter(
                    "repro_collector_errors_total",
                    "Scrape-time collector failures", collector=name,
                    error=type(exc).__name__).inc()

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def collect(self) -> dict:
        """JSON-safe snapshot of every series (the ``metrics`` verb)."""
        self.run_collectors()
        with self._lock:
            families: dict[str, dict] = {}
            for (name, label_key), series in sorted(self._series.items()):
                family = families.setdefault(name, {
                    "type": series.kind,
                    "help": self._help.get(name, ""),
                    "series": [],
                })
                entry: dict = {"labels": dict(label_key)}
                if isinstance(series, Histogram):
                    entry["count"] = series.count
                    entry["sum"] = round(series.total, 6)
                    entry["buckets"] = {
                        ("+Inf" if bound == float("inf") else f"{bound:g}"):
                            cumulative
                        for bound, cumulative in series.cumulative()}
                else:
                    entry["value"] = round(series.value, 6)
                family["series"].append(entry)
            return families

    def render_prometheus(self) -> str:
        return render_prometheus(self.collect())


# ----------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4) — emit and parse
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(families: dict) -> str:
    """Render a :meth:`MetricsRegistry.collect` dict as exposition text."""
    lines: list[str] = []
    for name, family in sorted(families.items()):
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in family["series"]:
            labels = entry.get("labels", {})
            if family["type"] == "histogram":
                for bound, cumulative in entry["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels({**labels, 'le': bound})} "
                        f"{cumulative}")
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{entry['sum']:g}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{entry['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{entry['value']:g}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse exposition text back into ``{name: [(labels, value)]}``.

    A deliberately strict stdlib parser: any malformed sample line
    raises ``ValueError``.  Used by tests and the CI smoke job to prove
    the endpoint emits valid exposition format.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no metric name: {line!r}")
        labels: dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels")
            name, _, label_blob = name_part.partition("{")
            blob = label_blob[:-1]
            while blob:
                key, sep, rest = blob.partition("=")
                if not sep or not rest.startswith('"'):
                    raise ValueError(
                        f"line {lineno}: malformed label in {line!r}")
                # Find the closing quote, honouring backslash escapes.
                index, chars = 1, []
                while index < len(rest):
                    char = rest[index]
                    if char == "\\" and index + 1 < len(rest):
                        chars.append(rest[index + 1])
                        index += 2
                        continue
                    if char == '"':
                        break
                    chars.append(char)
                    index += 1
                else:
                    raise ValueError(
                        f"line {lineno}: unterminated label value")
                labels[key.strip()] = "".join(chars)
                blob = rest[index + 1:].lstrip(",")
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        try:
            value = float(value_part)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {value_part!r}"
            ) from exc
        samples.setdefault(name, []).append((labels, value))
    if not samples:
        raise ValueError("no samples in exposition text")
    return samples


# ----------------------------------------------------------------------
# Scrape endpoint
# ----------------------------------------------------------------------
class MetricsServer:
    """``GET /metrics`` over stdlib ``http.server``, on a daemon thread.

    Port 0 picks a free port (read :attr:`port` after ``start()``).
    ``/metrics?format=json`` returns the :meth:`~MetricsRegistry.collect`
    dict instead of the text exposition.
    """

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        self.host = host
        self.port = port
        self._httpd = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — http.server API
                path, _, query = self.path.partition("?")
                if path not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                if "format=json" in query:
                    body = json.dumps(registry.collect()).encode()
                    content_type = "application/json"
                else:
                    body = registry.render_prometheus().encode()
                    content_type = "text/plain; version=0.0.4"
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are routine; keep stderr quiet

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
