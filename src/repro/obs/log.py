"""JSON-lines structured logging with trace correlation.

The codebase historically had *zero* logging — faults surfaced only as
exceptions or telemetry counters.  This module adds the minimum an
operator needs: one JSON object per line, written to a file or stream,
with the current trace id attached automatically so a log line can be
joined against its request's spans.

Logging is **off until configured** (``configure_logging``); an
unconfigured :class:`JsonLogger` call is a single ``if`` and returns,
so the adoption points in the service, pool, and keystore paths cost
nothing in the default setup.  There is deliberately no handler tree,
no formatter registry, no per-module level dance — a signing service
needs "events, as data, somewhere greppable", not a logging framework.

Line shape::

    {"ts": 1754650000.123456, "level": "warn", "component": "pool",
     "event": "worker-respawn", "trace": "9f…", "slot": 2, "exitcode": 13}

``ts`` is wall-clock epoch seconds (the clock spans share), ``trace``
appears only when a trace context is current, and every extra keyword
passed to the log call rides along as a top-level field.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

from .trace import current_trace

__all__ = ["JsonLogger", "configure_logging", "get_logger",
           "logging_enabled"]

LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_lock = threading.Lock()
_stream: IO[str] | None = None
_owns_stream = False
_threshold = LEVELS["info"]
_loggers: dict[str, "JsonLogger"] = {}


def configure_logging(dest: str | IO[str] | None,
                      level: str = "info") -> None:
    """Route JSON log lines to *dest*; ``None`` disables logging.

    *dest* may be a path (opened append, line-buffered), ``"-"`` for
    stderr, or an open text stream.  Reconfiguring closes a previously
    opened file.
    """
    global _stream, _owns_stream, _threshold
    if level not in LEVELS:
        raise ValueError(
            f"log level must be one of {sorted(LEVELS)}, got {level!r}")
    with _lock:
        if _owns_stream and _stream is not None:
            _stream.close()
        if dest is None:
            _stream, _owns_stream = None, False
        elif dest == "-":
            _stream, _owns_stream = sys.stderr, False
        elif isinstance(dest, str):
            _stream = open(dest, "a", buffering=1, encoding="utf-8")
            _owns_stream = True
        else:
            _stream, _owns_stream = dest, False
        _threshold = LEVELS[level]


def logging_enabled() -> bool:
    return _stream is not None


class JsonLogger:
    """Component-scoped emitter; see module docstring for the shape."""

    def __init__(self, component: str):
        self.component = component

    def log(self, level: str, event: str, **fields) -> None:
        stream = _stream
        if stream is None or LEVELS.get(level, 0) < _threshold:
            return
        record = {"ts": round(time.time(), 6), "level": level,
                  "component": self.component, "event": event}
        trace = current_trace()
        if trace is not None:
            record["trace"] = trace.trace_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with _lock:
            try:
                stream.write(line + "\n")
            except (OSError, ValueError):
                pass  # a full disk or closed stream must not kill signing

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> JsonLogger:
    """The shared :class:`JsonLogger` for *component* (cached)."""
    logger = _loggers.get(component)
    if logger is None:
        logger = _loggers[component] = JsonLogger(component)
    return logger
