"""Request tracing: spans, context propagation, export, critical path.

A *trace* is one signed request's journey through the stack; a *span* is
one timed segment of it (queue wait, dispatch, a signer stage).  The
design follows the usual distributed-tracing shape but stays tiny and
stdlib-only:

* :class:`TraceContext` — the (trace id, span id) pair that rides with a
  request.  Propagated via a ``contextvars`` variable where the call
  chain is synchronous (:func:`use_trace` / :func:`current_trace`), and
  carried *explicitly* where it is not: the batcher's timer-fired
  dispatch tasks, the worker pool's request messages, and the wire
  protocol's optional ``trace`` field all break the context chain, so
  each hands the ids along as plain data.
* :class:`Span` — a finished segment with wall-clock start/end.  Spans
  use ``time.time()`` (not a monotonic clock) deliberately: worker
  processes live on the same host, so wall time is the one clock every
  tier shares and spans from a forked worker line up with the parent's.
* :class:`Tracer` — the process-wide sink: a bounded ring
  (``collections.deque``) plus an optional JSON-lines file.  Recording
  is a lock, a dict build, and an append — cheap enough for per-request
  use — and every call site guards with ``if tracer is not None`` so a
  tracer-less service pays nothing.
* :class:`StageAggregator` — an adapter for the pre-existing
  ``HashContext.tracer`` hook (built for the conformance oracle): it
  turns the per-hop ``record(stage, label, value)`` stream into
  per-stage wall time *and hash counts*, which is how the scalar
  backend's ``fors``/``wots``/``merkle``/``hypertree`` sub-spans get
  their compression-call attribution.

:func:`load_spans` / :func:`render_critical_path` are the analysis half:
they read a trace ring or JSONL export back and render the queue-wait vs
dispatch vs sign vs serialize breakdown ``repro trace`` prints.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Span", "StageAggregator", "TraceContext", "Tracer",
           "current_trace", "load_spans", "new_span_id", "new_trace_id",
           "render_critical_path", "start_trace", "use_trace"]

#: Default bound on the in-memory span ring.
RING_SIZE = 4096

#: Stages the critical-path table always reports, in pipeline order.
#: ``queue`` is time spent waiting for the batch to form, ``dispatch``
#: covers the executor/worker hop around signing, and the rest are the
#: signer's own stages as reported by ``BatchSignResult.stage_seconds``.
CRITICAL_STAGES = ("queue", "dispatch", "prepare", "fors", "hypertree",
                   "serialize")


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The ids a request carries: its trace, and the current span."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace."""
        return TraceContext(self.trace_id, new_span_id())


_CURRENT: contextvars.ContextVar[TraceContext | None] = \
    contextvars.ContextVar("repro_trace", default=None)


def current_trace() -> TraceContext | None:
    """The trace context propagating through this call chain, if any."""
    return _CURRENT.get()


def start_trace() -> TraceContext:
    """A brand-new root context (fresh trace id, fresh span id)."""
    return TraceContext(new_trace_id(), new_span_id())


@contextlib.contextmanager
def use_trace(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install *ctx* as the current trace for the enclosed block."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@dataclass(frozen=True)
class Span:
    """One finished, timed segment of a trace (wall-clock seconds)."""

    trace_id: str
    span_id: str
    name: str
    start: float
    end: float
    parent_id: str | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.end - self.start) * 1000.0

    def as_dict(self) -> dict:
        record = {
            "trace": self.trace_id, "span": self.span_id,
            "name": self.name, "start": round(self.start, 6),
            "end": round(self.end, 6),
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            trace_id=str(record["trace"]), span_id=str(record["span"]),
            name=str(record["name"]), start=float(record["start"]),
            end=float(record["end"]),
            parent_id=record.get("parent"),
            attrs=dict(record.get("attrs") or {}),
        )


class Tracer:
    """Bounded in-memory span ring with an optional JSONL export.

    Thread-safe: the service's event loop, the pool's collector thread,
    and benchmark harnesses may all record concurrently.  ``out_path``
    appends one JSON object per span as it is recorded (line-buffered,
    so a crashed process leaves a readable file).
    """

    def __init__(self, ring_size: int = RING_SIZE,
                 out_path: str | None = None):
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=max(1, ring_size))
        self.out_path = out_path
        self._out = open(out_path, "a", buffering=1) if out_path else None
        self.recorded = 0

    # ------------------------------------------------------------------
    def record_span(self, name: str, *, trace: TraceContext,
                    start: float, end: float,
                    parent_id: str | None = None,
                    span_id: str | None = None, **attrs) -> Span:
        """Record a finished segment of *trace*; returns the new span."""
        span = Span(
            trace_id=trace.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            name=name, start=start, end=end, parent_id=parent_id,
            attrs=attrs,
        )
        self.record(span)
        return span

    def record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            self.recorded += 1
            if self._out is not None:
                self._out.write(json.dumps(span.as_dict(),
                                           separators=(",", ":")) + "\n")

    def ingest(self, records: Iterable[dict]) -> int:
        """Record span dicts produced elsewhere (worker processes)."""
        count = 0
        for record in records:
            try:
                span = Span.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue  # a malformed remote span must not kill dispatch
            self.record(span)
            count += 1
        return count

    @contextlib.contextmanager
    def span(self, name: str, trace: TraceContext | None = None,
             **attrs) -> Iterator[TraceContext]:
        """Time the enclosed block as a child span and propagate context.

        Without an explicit *trace* (and no ambient one), a fresh root
        trace is started; the block runs with a child context installed,
        so nested :meth:`span` calls parent correctly.
        """
        parent = trace if trace is not None else current_trace()
        ctx = parent.child() if parent is not None else start_trace()
        # One wall-clock read anchors the span on the timeline; the
        # duration comes from the monotonic clock, so a wall step (NTP)
        # inside the block cannot yield a negative or inflated span.
        started = time.time()
        started_mono = time.perf_counter()
        with use_trace(ctx):
            yield ctx
        self.record_span(
            name, trace=ctx, start=started,
            end=started + (time.perf_counter() - started_mono),
            parent_id=parent.span_id if parent is not None else None,
            span_id=ctx.span_id, **attrs)

    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._ring)

    def traces(self) -> dict[str, list[Span]]:
        """Ring contents grouped by trace id, spans in start order."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda span: span.start)
        return grouped

    def close(self) -> None:
        with self._lock:
            if self._out is not None:
                self._out.close()
                self._out = None


class StageAggregator:
    """Adapt the ``HashContext.tracer`` hook into per-stage profiles.

    The SPHINCS+ components report each structural hop through
    ``tracer.record(stage, label, value)`` (stages: ``prepare``,
    ``fors``, ``wots``, ``merkle``, ``hypertree``).  This sink
    attributes the wall time and hash-compression calls *since the
    previous hop* to the reported stage — turning the oracle's
    divergence hook into a per-stage profiler with no new plumbing in
    the signer.  Install on a backend's tappable hash context for the
    duration of one batch (see ``SigningService._dispatch``).
    """

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.stage_seconds: dict[str, float] = {}
        self.stage_hashes: dict[str, int] = {}
        self._last_time = time.perf_counter()
        self._last_calls = ctx.hash_calls

    def record(self, stage: str, label: str, value: bytes) -> None:
        now = time.perf_counter()
        calls = self.ctx.hash_calls
        self.stage_seconds[stage] = (self.stage_seconds.get(stage, 0.0)
                                     + (now - self._last_time))
        self.stage_hashes[stage] = (self.stage_hashes.get(stage, 0)
                                    + (calls - self._last_calls))
        self._last_time = now
        self._last_calls = calls


@contextlib.contextmanager
def tap_stages(backend) -> Iterator[StageAggregator | None]:
    """Install a :class:`StageAggregator` on *backend* for one batch.

    Yields ``None`` when the backend has no tappable hash context (the
    vectorized hot loops and the worker pool sign hook-free) or when a
    tracer is already installed (the conformance oracle owns the hook
    then) — callers fall back to coarse ``stage_seconds`` timings.
    """
    from ..errors import BackendError

    try:
        ctx = backend.hash_context()
    except BackendError:
        yield None
        return
    if ctx.tracer is not None:
        yield None
        return
    aggregator = StageAggregator(ctx)
    was_counting = ctx.counting
    ctx.counting = True
    ctx.tracer = aggregator
    try:
        yield aggregator
    finally:
        ctx.tracer = None
        ctx.counting = was_counting


# ----------------------------------------------------------------------
# Analysis: load a trace export and render the critical path
# ----------------------------------------------------------------------
def load_spans(path: str) -> list[Span]:
    """Read a ``--trace-out`` JSONL export back into spans.

    Tolerates trailing partial lines (a live service may still be
    appending); raises ``OSError`` for an unreadable file and
    ``ValueError`` when nothing in the file parses as a span.
    """
    spans: list[Span] = []
    bad = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                bad += 1
    if not spans:
        raise ValueError(
            f"{path}: no spans found"
            + (f" ({bad} unparseable lines)" if bad else "")
        )
    return spans


def trace_breakdowns(spans: Iterable[Span]) -> list[dict]:
    """Per-trace critical-path summaries, slowest first.

    Each entry: ``trace`` (id), ``total_ms`` (root request span), the
    root's attrs (tenant, backend, batch size), and ``stages`` mapping
    each observed stage name to milliseconds.  Traces without a root
    ``request``/``client-request`` span fall back to their overall
    span extent.
    """
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    breakdowns = []
    for trace_id, members in grouped.items():
        root = next((span for span in members
                     if span.name in ("request", "client-request")
                     and span.parent_id is None), None)
        if root is None:
            root = next((span for span in members
                         if span.parent_id is None), None)
        total_ms = (root.duration_ms if root is not None else
                    (max(span.end for span in members)
                     - min(span.start for span in members)) * 1000.0)
        stages: dict[str, float] = {}
        for span in members:
            if root is not None and span.span_id == root.span_id:
                continue
            stages[span.name] = (stages.get(span.name, 0.0)
                                 + span.duration_ms)
        breakdowns.append({
            "trace": trace_id,
            "total_ms": round(total_ms, 3),
            "attrs": dict(root.attrs) if root is not None else {},
            "stages": {name: round(ms, 3)
                       for name, ms in sorted(stages.items())},
            "spans": len(members),
        })
    breakdowns.sort(key=lambda entry: entry["total_ms"], reverse=True)
    return breakdowns


def render_critical_path(spans: Iterable[Span], top: int = 10) -> str:
    """The ``repro trace`` report: slowest requests + stage aggregate."""
    from ..analysis.reporting import format_table

    breakdowns = trace_breakdowns(spans)
    rows = []
    for entry in breakdowns[:top]:
        stages = entry["stages"]
        attrs = entry["attrs"]
        rows.append([
            entry["trace"][:12],
            attrs.get("tenant", "-"),
            attrs.get("backend", "-"),
            attrs.get("batch_size", "-"),
            round(entry["total_ms"], 2),
            *(round(stages.get(name, 0.0), 2) for name in CRITICAL_STAGES),
        ])
    sections = [format_table(
        ["trace", "tenant", "backend", "batch", "total ms",
         *(f"{name} ms" for name in CRITICAL_STAGES)],
        rows,
        title=f"Critical path — slowest {min(top, len(breakdowns))} of "
              f"{len(breakdowns)} traces",
    )]

    totals: dict[str, float] = {}
    grand = 0.0
    for entry in breakdowns:
        grand += entry["total_ms"]
        for name, ms in entry["stages"].items():
            totals[name] = totals.get(name, 0.0) + ms
    if grand > 0:
        sections.append(format_table(
            ["stage", "total ms", "share of request time"],
            [[name, round(ms, 2), f"{100.0 * ms / grand:.1f}%"]
             for name, ms in sorted(totals.items(),
                                    key=lambda item: -item[1])],
            title="Where the time goes (all traces)",
        ))
    return "\n\n".join(sections)
