"""Multi-node scale-out: a cluster router over sharded signing nodes.

One signing node — even with a worker pool — tops out at a single
machine.  This package scales the service *horizontally*: a
:class:`~.router.ClusterRouter` process speaks the ordinary wire
protocol (v1/v2/v3) northbound and places every request on one of N
backend :class:`~repro.service.server.SigningServer` nodes southbound,
so clients, the CLI, and the load generator work against a cluster
completely unchanged.

Placement is consistent hashing over the tenant name — the same
:class:`~repro.runtime.pool.HashRing` the worker pool uses for cache
affinity, lifted one level: tenant → node instead of ``(tenant, key)``
→ worker.  A node failure re-homes only that node's arc of tenants
(onto the next slot in ring-preference order), and the shard snaps back
the moment the node recovers.  Requests that cannot be placed anywhere
fail with a typed ``unavailable`` error — never a hang — and are safe
to resubmit because nothing was signed.

Key distribution rides the sharded
:class:`~repro.service.keystore.Keystore`: every node points at a
keystore holding all tenants (shared root or identical seeding), and
the per-node LRU key cache keeps only the shards the ring actually
homes there resident — a re-homed tenant's keys load lazily on the
failover node.

See ``docs/architecture.md`` for the full design and
``docs/operations.md`` for running a cluster.
"""

from .local import LocalCluster
from .router import ClusterRouter, RouterService

__all__ = ["ClusterRouter", "LocalCluster", "RouterService"]
