"""The cluster router: consistent-hash placement over signing nodes.

:class:`RouterService` presents the :class:`~..service.server.SigningService`
surface (``sign`` / ``verify`` / ``stats`` / ``keystore`` /
``metrics_registry``) but owns no batcher or backend — every request is
placed on one of N backend :class:`~..service.server.SigningServer` nodes
over the wire protocol and forwarded through a pipelined
:class:`~..service.client.ServiceClient`.  :class:`ClusterRouter` wraps it
in a stock ``SigningServer``, which is the whole trick: the router speaks
protocol v1/v2/v3 northbound *unchanged* because the verb table only ever
touches the service surface.

Placement and failover
----------------------
The shard key is the tenant name.  :meth:`~repro.runtime.pool.HashRing.
preference` yields every node slot in clockwise ring order from the
tenant's hash point; the router forwards to the first *live* entry.  That
single rule gives the whole failover story:

* All nodes up — each tenant sits on its primary; adding a node moves
  only the tenants whose arc it claims (consistent hashing).
* A node dies — its tenants re-home to the next slot on the ring, the
  same slot consistent hashing would pick if the node were removed.
* The node returns — the preference order has not changed, so each
  tenant snaps back to its primary on the next request.

Liveness is driven two ways: a forward attempt that hits a dead socket
marks the node down and retries the next candidate immediately (bounded
by ``max_retries``), and a background health loop pings live nodes and
re-dials dead ones every ``health_interval_s``.  When no candidate
accepts, the request fails with a typed
:class:`~repro.errors.NodeUnavailableError` ("unavailable" on the wire)
— never a hang, and safe to resubmit since nothing was signed.
"""

from __future__ import annotations

import asyncio
import contextlib

from ..errors import (ConnectionLostError, NodeUnavailableError,
                      OverloadedError, ServiceError)
from ..obs.log import get_logger
from ..obs.trace import Tracer
from ..runtime.pool import HashRing
from ..service import protocol
from ..service.client import ServiceClient
from ..service.keystore import Keystore
from ..service.server import SigningServer, SignOutcome
from ..service.telemetry import Telemetry

__all__ = ["ClusterRouter", "RouterService"]

_log = get_logger("cluster")

#: Errors that mean "this node is gone", not "this request is bad" —
#: the only ones that trigger failover to the next ring candidate.
_NODE_ERRORS = (ConnectionLostError, ConnectionError, OSError,
                asyncio.TimeoutError)


class _Node:
    """One backend signing node and its southbound connection state."""

    __slots__ = ("index", "host", "port", "wire", "up")

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = port
        self.wire: ServiceClient | None = None
        self.up = True  # optimistic: the first forward attempt decides

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class RouterService:
    """Tenant-sharded request placement over N backend signing nodes.

    Satisfies the service surface the TCP verb table consumes, so a
    stock :class:`~..service.server.SigningServer` (via
    :class:`ClusterRouter`) serves it northbound without modification.

    Parameters
    ----------
    nodes:
        ``(host, port)`` of every backend node.  Ring slot *i* is node
        *i* — placement depends on the order, so every router fronting
        the same cluster must list the nodes identically.
    keystore:
        The router's own key registry, used to fail unknown tenants and
        keys fast (before any forwarding) and to answer the ``keys``
        verb.  Point it at the same root the nodes share; with
        ``max_cached`` set, resident memory tracks only hot tenants.
    max_retries:
        Extra placement attempts after the primary (each on the next
        live ring candidate) before a request fails as unavailable.
    health_interval_s:
        Background liveness cadence: live nodes are pinged, dead nodes
        re-dialed.  A recovered node starts taking its tenants back on
        the very next request.
    """

    def __init__(self, nodes: list[tuple[str, int]], keystore: Keystore,
                 *, max_retries: int = 2, health_interval_s: float = 0.5,
                 telemetry: Telemetry | None = None,
                 tracer: Tracer | None = None):
        if not nodes:
            raise ServiceError("a cluster needs at least one node")
        if max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {max_retries}")
        self.keystore = keystore
        self.backend_name = "cluster"
        self.pool = None  # capabilities(): a router has no local workers
        self.tracer = tracer
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.metrics_registry = self.telemetry.registry
        self.max_retries = max_retries
        self.health_interval_s = health_interval_s
        self.ring = HashRing(len(nodes))
        self._nodes = [_Node(i, host, port)
                       for i, (host, port) in enumerate(nodes)]
        #: Last node each tenant was served by; a change is a re-home.
        self._homes: dict[str, int] = {}
        self._rehomes = 0
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._health_task: asyncio.Task | None = None
        self._closed = False
        for node in self._nodes:
            self._node_gauge(node)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Dial every node and start the health loop.

        Nodes that refuse the first dial come up ``down`` (their tenants
        land on failover candidates) and are re-dialed by the health
        loop — a router may start before its fleet does.
        """
        for node in self._nodes:
            try:
                await self._connect(node)
            except _NODE_ERRORS:
                self._mark_down(node, reason="initial dial failed")
        if self._health_task is None:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop())

    async def aclose(self) -> None:
        """Stop the health loop, wait out in-flight requests, hang up."""
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        await self._idle.wait()
        for node in self._nodes:
            wire, node.wire = node.wire, None
            if wire is not None:
                with contextlib.suppress(Exception):
                    await wire.close()

    async def drain(self) -> None:
        """SigningServer.stop() hook: wait for forwarded requests."""
        await self._idle.wait()

    def close(self) -> None:
        """Sync half of shutdown (SigningServer.stop() calls this).

        :class:`ClusterRouter` runs :meth:`aclose` first, so by the time
        the base server reaches here there is nothing left to do — but a
        bare ``SigningServer`` over a RouterService stays safe too.
        """
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None

    # ------------------------------------------------------------------
    # Service surface (consumed by the verb table)
    # ------------------------------------------------------------------
    async def sign(self, message: bytes, tenant: str,
                   key_name: str = "default",
                   deadline_ms: float | None = None) -> SignOutcome:
        """Place and forward one sign request; returns the node's outcome.

        Raises :class:`KeystoreError` / :class:`OverloadedError` exactly
        like the local service (typed node responses propagate), and
        :class:`NodeUnavailableError` when the owner and every failover
        candidate are unreachable.
        """
        self.keystore.resolve(tenant, key_name)  # fail fast, never forward
        admit = getattr(self.keystore, "admit", None)
        if admit is not None and not admit(tenant):
            self.telemetry.record_shed(tenant)
            raise OverloadedError(
                f"tenant {tenant!r} exhausted its admission rate-limit "
                "budget; request shed")
        self.telemetry.record_submitted(tenant)
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._track(+1)
        try:
            response, node = await self._forward_sign(
                message, tenant, key_name, deadline_ms)
        except Exception:
            self.telemetry.record_failed(tenant)
            raise
        finally:
            self._track(-1)
        self._note_home(tenant, node)
        total_ms = (loop.time() - started) * 1000.0
        self.telemetry.record_batch(response.get("batch_size", 1))
        self.telemetry.record_signed(tenant, total_ms,
                                     response.get("wait_ms", 0.0))
        return SignOutcome(
            signature=response["signature"], tenant=tenant,
            key_name=key_name, params=response["params"],
            backend=f"node{node.index}:{response['backend']}",
            batch_size=response.get("batch_size", 1),
            wait_ms=response.get("wait_ms", 0.0),
            total_ms=round(total_ms, 3))

    async def verify(self, message: bytes, signature: bytes, tenant: str,
                     key_name: str = "default") -> tuple[bool, str]:
        """Forward a verify to the tenant's node; ``(valid, params)``."""
        self.keystore.resolve(tenant, key_name)
        self._track(+1)
        try:
            request = {"op": "verify", "tenant": tenant, "key": key_name,
                       "message": protocol.pack_bytes(message),
                       "signature": protocol.pack_bytes(signature)}
            response, _ = await self._forward(request)
        finally:
            self._track(-1)
        return bool(response["valid"]), response["params"]

    def stats(self) -> dict:
        """Router-side telemetry snapshot plus the cluster section."""
        snapshot = self.telemetry.snapshot()
        snapshot["queue"]["depth"] = self._in_flight
        homes: dict[int, int] = {}
        for slot in self._homes.values():
            homes[slot] = homes.get(slot, 0) + 1
        snapshot["config"] = {
            "backend": self.backend_name,
            "workers": 0,
            "max_retries": self.max_retries,
            "health_interval_ms": round(self.health_interval_s * 1e3, 3),
            "tenants": {name: self.keystore.params_for(name)
                        for name in self.keystore.tenants()},
        }
        snapshot["cluster"] = {
            "nodes": [{"node": node.index, "address": node.address,
                       "up": node.up,
                       "tenants": homes.get(node.index, 0)}
                      for node in self._nodes],
            "live_nodes": sum(node.up for node in self._nodes),
            "rehomes": self._rehomes,
            "shards": {tenant: self._homes[tenant]
                       for tenant in sorted(self._homes)},
        }
        return snapshot

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def owner(self, tenant: str) -> int:
        """The node index currently owning *tenant* (first live slot)."""
        return self._candidates(tenant)[0].index

    def _candidates(self, tenant: str) -> list[_Node]:
        """Nodes to try for *tenant*: live ones in ring-preference order,
        then down ones (a "down" mark may be stale — when everything
        else failed, a request is the cheapest probe)."""
        preference = [self._nodes[slot]
                      for slot in self.ring.preference(tenant)]
        live = [node for node in preference if node.up]
        if not live:
            raise NodeUnavailableError(
                f"no live node for tenant {tenant!r}: all "
                f"{len(self._nodes)} nodes are down")
        return live + [node for node in preference if not node.up]

    async def _forward_sign(self, message: bytes, tenant: str,
                            key_name: str, deadline_ms: float | None
                            ) -> tuple[dict, _Node]:
        last: Exception | None = None
        for attempt, node in enumerate(self._candidates(tenant)):
            if attempt > self.max_retries:
                break
            try:
                wire = await self._wire(node)
                return await wire.sign(message, tenant, key_name,
                                       deadline_ms), node
            except _NODE_ERRORS as exc:
                last = exc
                self._mark_down(node, reason=str(exc))
        raise NodeUnavailableError(
            f"no node accepted tenant {tenant!r} after "
            f"{self.max_retries + 1} attempts (last: {last})")

    async def _forward(self, request: dict) -> tuple[dict, _Node]:
        tenant = request.get("tenant", "")
        last: Exception | None = None
        for attempt, node in enumerate(self._candidates(tenant)):
            if attempt > self.max_retries:
                break
            try:
                wire = await self._wire(node)
                return await wire.request(request), node
            except _NODE_ERRORS as exc:
                last = exc
                self._mark_down(node, reason=str(exc))
        raise NodeUnavailableError(
            f"no node accepted {request.get('op')!r} for tenant "
            f"{tenant!r} after {self.max_retries + 1} attempts "
            f"(last: {last})")

    # ------------------------------------------------------------------
    # Node liveness
    # ------------------------------------------------------------------
    async def _connect(self, node: _Node) -> ServiceClient:
        wire = await ServiceClient.open(node.host, node.port)
        try:
            # One hello upgrades the southbound wire to the newest
            # protocol the node speaks (v3 flips it to binary frames).
            await wire.request({"op": "hello",
                                "version": protocol.PROTOCOL_VERSION})
        except Exception:
            with contextlib.suppress(Exception):
                await wire.close()
            raise
        node.wire = wire
        self._mark_up(node)
        return wire

    async def _wire(self, node: _Node) -> ServiceClient:
        if node.wire is not None and node.wire.alive:
            return node.wire
        return await self._connect(node)

    def _mark_down(self, node: _Node, reason: str = "") -> None:
        if node.up:
            _log.warn("node-down", node=node.index, address=node.address,
                      reason=reason)
        node.up = False
        wire, node.wire = node.wire, None
        if wire is not None:
            # Fire-and-forget: the wire is already dead, closing only
            # reclaims the reader task.
            task = asyncio.get_running_loop().create_task(wire.close())
            task.add_done_callback(lambda t: t.exception())
        self._node_gauge(node)

    def _mark_up(self, node: _Node) -> None:
        if not node.up:
            _log.info("node-up", node=node.index, address=node.address)
        node.up = True
        self._node_gauge(node)

    def _node_gauge(self, node: _Node) -> None:
        self.metrics_registry.gauge(
            "repro_node_up", "Node liveness as seen by the router",
            node=str(node.index), address=node.address,
        ).set(1.0 if node.up else 0.0)

    def _note_home(self, tenant: str, node: _Node) -> None:
        previous = self._homes.get(tenant)
        if previous == node.index:
            return
        self._homes[tenant] = node.index
        if previous is not None:
            self._rehomes += 1
            self.metrics_registry.counter(
                "repro_cluster_rehomes_total",
                "Tenant shards moved to a different node",
                tenant=tenant).inc()
            _log.info("shard-rehomed", tenant=tenant,
                      source=previous, target=node.index)
        self.metrics_registry.gauge(
            "repro_cluster_tenant_home",
            "Node index currently serving each tenant shard",
            tenant=tenant).set(float(node.index))

    def _track(self, delta: int) -> None:
        self._in_flight += delta
        if self._in_flight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    async def _health_loop(self) -> None:
        """Ping live nodes, re-dial dead ones, every interval."""
        timeout = max(self.health_interval_s, 0.1)
        while not self._closed:
            await asyncio.sleep(self.health_interval_s)
            for node in self._nodes:
                try:
                    wire = await asyncio.wait_for(self._wire(node), timeout)
                    await asyncio.wait_for(wire.ping(), timeout)
                except _NODE_ERRORS as exc:
                    self._mark_down(node, reason=f"health: {exc}")
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — keep probing
                    self._mark_down(node, reason=f"health: {exc}")


class ClusterRouter(SigningServer):
    """A stock :class:`SigningServer` fronting a :class:`RouterService`.

    Northbound it is indistinguishable from a single node — same verbs,
    same protocol versions, same error codes (plus ``unavailable``) —
    so every existing client (``repro.api``, the CLI, the load
    generator) works against a cluster unchanged.
    """

    def __init__(self, service: RouterService,
                 host: str = "127.0.0.1", port: int = 0):
        super().__init__(service, host=host, port=port)

    async def start(self) -> None:
        await self.service.start()  # southbound dials + health loop
        await super().start()

    async def stop(self) -> None:
        # The base stop() drains and closes synchronously; the router
        # additionally owns async southbound state (wires, health task)
        # that must be torn down inside the loop.
        await self.service.aclose()
        await super().stop()
