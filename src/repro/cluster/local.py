"""An in-process cluster: N signing nodes behind one router.

Test/demo scaffolding used by the differential oracle's cluster paths,
the cluster-scaling benchmark, the ``repro serve-cluster`` CLI, and the
CI smoke run.  Every node is a real :class:`SigningServer` on its own
loopback port speaking the real wire protocol — only the processes are
shared, so chaos experiments (:meth:`LocalCluster.kill_node` aborts a
node's transports mid-flight) exercise exactly the failover code a
multi-host deployment would.

Each node's service comes from a caller-supplied factory, so nodes can
be restarted after a kill: the factory builds a fresh service (same
keystore seeding) and the new server binds the *same* port, which is how
a recovered node re-enters the ring without any router reconfiguration.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ServiceError
from ..service.keystore import Keystore
from ..service.server import SigningServer, SigningService
from .router import ClusterRouter, RouterService

__all__ = ["LocalCluster"]


class LocalCluster:
    """N factory-built signing nodes fronted by a :class:`ClusterRouter`.

    Parameters
    ----------
    factories:
        One zero-argument callable per node, each returning a fresh
        :class:`SigningService`.  Factories must seed their keystores
        identically — a tenant re-homed to another node must resolve the
        same key bytes there, or failover would change signatures.
    router_keystore:
        The router's own registry for fail-fast resolution (default: the
        first node's keystore, which is correct whenever the factories
        seed identically).
    host / port:
        Northbound bind for the router (``port=0`` picks a free port,
        published as :attr:`port` after :meth:`start`).
    """

    def __init__(self, factories: list[Callable[[], SigningService]], *,
                 router_keystore: Keystore | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_retries: int = 2, health_interval_s: float = 0.2):
        if not factories:
            raise ServiceError("a cluster needs at least one node factory")
        self._factories = list(factories)
        self._router_keystore = router_keystore
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self.health_interval_s = health_interval_s
        self.services: list[SigningService] = []
        self.servers: list[SigningServer] = []
        self.router_service: RouterService | None = None
        self.router: ClusterRouter | None = None

    async def start(self) -> "LocalCluster":
        """Start every node, then the router; returns ``self``."""
        for factory in self._factories:
            service = factory()
            server = SigningServer(service, port=0)
            await server.start()
            self.services.append(service)
            self.servers.append(server)
        self.router_service = RouterService(
            [(server.host, server.port) for server in self.servers],
            self._router_keystore if self._router_keystore is not None
            else self.services[0].keystore,
            max_retries=self.max_retries,
            health_interval_s=self.health_interval_s)
        self.router = ClusterRouter(self.router_service,
                                    host=self.host, port=self.port)
        await self.router.start()
        self.port = self.router.port
        return self

    async def stop(self) -> None:
        if self.router is not None:
            await self.router.stop()
            self.router = None
            self.router_service = None
        for server in self.servers:
            try:
                await server.stop()
            except Exception:  # noqa: BLE001 — aborted nodes stay dead
                pass
        self.servers.clear()
        self.services.clear()

    # ------------------------------------------------------------------
    # Chaos controls
    # ------------------------------------------------------------------
    async def kill_node(self, index: int) -> None:
        """Crash node *index*: transports reset, queued work abandoned."""
        await self.servers[index].abort()

    async def restart_node(self, index: int) -> None:
        """Bring a killed node back on its original port."""
        old_port = self.servers[index].port
        service = self._factories[index]()
        server = SigningServer(service, port=old_port)
        await server.start()
        self.services[index] = service
        self.servers[index] = server

    def owner(self, tenant: str) -> int:
        """The node index the router currently places *tenant* on."""
        assert self.router_service is not None, "cluster not started"
        return self.router_service.owner(tenant)
