"""HERO-Sign reproduction.

A production-quality Python library reproducing *HERO-Sign: Hierarchical
Tuning and Efficient Compiler-Time GPU Optimizations for SPHINCS+ Signature
Generation* (Zhou & Wang, HPCA 2026).

Layers
------
``repro.sphincs``
    A complete functional SPHINCS+ (SHA-256 simple instantiation): real
    key generation, signing and verification for the 128f/192f/256f (and
    -s) parameter sets.
``repro.runtime``
    The unified batch-signing runtime: a pluggable ``SigningBackend``
    interface (scalar / vectorized / modeled-gpu) with first-class
    ``sign_batch`` APIs, and the ``BatchScheduler`` service layer that
    queues, routes, and accounts a message stream.
``repro.gpusim``
    An analytical GPU performance model — device catalog, occupancy, a
    compiler model with native/PTX SHA-256 branches, exact shared-memory
    bank-conflict simulation, streams and task graphs.
``repro.core``
    HERO-Sign itself: the Tree Tuning search (paper Algorithm 1), FORS
    Fusion and Relax-FORS, the generalized bank-padding rule, adaptive
    compile-time branch selection, hybrid memory placement, and the
    task-graph batch signer — plus the TCAS-SPHINCSp baseline model.

Quickstart
----------
>>> import repro
>>> scheme = repro.Sphincs("128f", deterministic=True)
>>> keys = scheme.keygen(seed=bytes(48))
>>> sig = scheme.sign(b"post-quantum", keys)
>>> scheme.verify(b"post-quantum", sig, keys.public)
True
"""

from .params import PARAMETER_SETS, FAST_SETS, SMALL_SETS, SphincsParams, get_params
from .sphincs import Sphincs, KeyPair, SigningArtifacts
from .errors import (
    ReproError,
    ParameterError,
    AddressError,
    BackendError,
    SignatureFormatError,
    GpuModelError,
    LaunchConfigError,
    SharedMemoryError,
    TuningError,
    GraphError,
)


def __getattr__(name: str):
    # Lazy: the runtime (scheduler/backends) and the client API facade
    # pull in their layers only when asked for.
    if name in ("runtime", "api"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "PARAMETER_SETS",
    "FAST_SETS",
    "SMALL_SETS",
    "SphincsParams",
    "get_params",
    "Sphincs",
    "KeyPair",
    "SigningArtifacts",
    "ReproError",
    "ParameterError",
    "AddressError",
    "BackendError",
    "runtime",
    "api",
    "SignatureFormatError",
    "GpuModelError",
    "LaunchConfigError",
    "SharedMemoryError",
    "TuningError",
    "GraphError",
    "__version__",
]
