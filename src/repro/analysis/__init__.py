"""Reporting helpers and the paper's reference numbers."""

from .reference_data import PAPER
from .reporting import format_table, shape_check, ratio

__all__ = ["PAPER", "format_table", "shape_check", "ratio"]
