"""Table formatting and shape-check helpers for the benchmark harness.

Benchmarks print paper-vs-measured tables with :func:`format_table` and
assert *shape* agreement — orderings and rough ratios, not absolute
numbers — with :func:`shape_check`.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "shape_check", "ratio"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def ratio(a: float, b: float) -> float:
    """a / b, guarding division by zero."""
    return a / b if b else float("inf")


def shape_check(
    measured: float,
    paper: float,
    rel_tolerance: float,
    label: str = "",
) -> None:
    """Assert ``measured`` is within a multiplicative band of ``paper``.

    ``rel_tolerance`` of 0.5 accepts measured in [paper/1.5, paper*1.5].
    Raises AssertionError with a readable message otherwise.
    """
    if paper == 0:
        raise AssertionError(f"{label}: paper value is zero, cannot compare")
    band = 1.0 + rel_tolerance
    lo, hi = paper / band, paper * band
    assert lo <= measured <= hi, (
        f"{label}: measured {measured:.4g} outside [{lo:.4g}, {hi:.4g}] "
        f"(paper {paper:.4g}, tolerance x{band:.2f})"
    )
