"""Programmatic experiment driver: regenerate every paper table/figure.

This is the library-level entry point behind the benchmark suite and the
``examples/reproduce_paper.py`` script: each ``run_*`` function returns the
rendered text table (paper vs model) for one experiment, and
:func:`run_all` produces the complete report.
"""

from __future__ import annotations

from ..core.baseline import baseline_plans
from ..core.batch import MODES, end_to_end_kops
from ..core.branch_select import select_branches
from ..core.kernels import OptimizationFlags, build_plans
from ..core.pipeline import kernel_comparison, kernel_report, optimization_ladder
from ..core.tree_tuning import tree_tuning_search
from ..cpu.avx2 import Avx2Model
from ..gpusim.compile_time import CompileTimeModel
from ..gpusim.compiler import Branch
from ..gpusim.device import DeviceSpec, get_device
from ..gpusim.engine import TimingEngine
from ..params import get_params
from .reference_data import PAPER
from .reporting import format_table

__all__ = [
    "run_table2",
    "run_table4",
    "run_table5",
    "run_table8",
    "run_table10",
    "run_table11",
    "run_fig11",
    "run_fig12",
    "run_all",
]

_ALIASES = ("128f", "192f", "256f")
_KERNELS = ("FORS_Sign", "TREE_Sign", "WOTS_Sign")


def _setup(device: DeviceSpec | str | None):
    dev = get_device(device) if isinstance(device, str) else (
        device or get_device("RTX 4090"))
    return dev, TimingEngine()


def run_table2(device: DeviceSpec | str | None = None) -> str:
    """Baseline time breakdown (paper Table II)."""
    dev, engine = _setup(device)
    rows = []
    for alias in _ALIASES:
        plans = baseline_plans(get_params(alias), dev)
        paper = PAPER["table2_breakdown_ms"][alias]
        for kernel, label in (("FORS_Sign", "FORS"), ("TREE_Sign", "MSS"),
                              ("WOTS_Sign", "WOTS")):
            ms = kernel_report(plans[kernel], engine).time_ms
            rows.append([alias, label, paper[label], round(ms, 2)])
    return format_table(
        ["set", "component", "paper ms", "model ms"], rows,
        title="Table II — baseline time breakdown",
    )


def run_table4() -> str:
    """Tree Tuning results (paper Table IV)."""
    rows = []
    for alias in ("128f", "192f"):
        best = tree_tuning_search(get_params(alias), 48 * 1024).best
        paper = PAPER["table4_tuning"][alias]
        rows.append([alias, paper["F"], best.f, paper["smem_util"],
                     round(best.u_s, 4), paper["thread_util"],
                     round(best.u_t, 4)])
    return format_table(
        ["set", "F (paper)", "F (model)", "smem util (paper)",
         "smem util (model)", "thread util (paper)", "thread util (model)"],
        rows, title="Table IV — Tree Tuning search results",
    )


def run_table5(device: DeviceSpec | str | None = None) -> str:
    """PTX branch selection (paper Table V)."""
    dev, engine = _setup(device)
    natives = {k: Branch.NATIVE for k in _KERNELS}
    rows = []
    for alias in _ALIASES:
        plans = build_plans(get_params(alias), dev, OptimizationFlags.full(),
                            branches=natives)
        choices = select_branches(plans, engine)
        paper = PAPER["table5_ptx_selection"][alias]
        for kernel in _KERNELS:
            rows.append([
                alias, kernel,
                "PTX" if paper[kernel] else "native",
                "PTX" if choices[kernel].ptx_selected else "native",
            ])
    return format_table(
        ["set", "kernel", "paper", "model"], rows,
        title="Table V — PTX branch selection",
    )


def run_table8(device: DeviceSpec | str | None = None) -> str:
    """Kernel comparison (paper Table VIII)."""
    dev, engine = _setup(device)
    rows = []
    for alias in _ALIASES:
        cmp = kernel_comparison(get_params(alias), dev, engine)
        for kernel, (base, hero) in cmp.items():
            paper = PAPER["table8_kernels"][alias][kernel]["kops"]
            rows.append([
                alias, kernel, paper[0], round(base.kops, 1), paper[1],
                round(hero.kops, 1),
                f"{paper[1] / paper[0]:.2f}x",
                f"{hero.kops / base.kops:.2f}x",
            ])
    return format_table(
        ["set", "kernel", "base KOPS (paper)", "base KOPS (model)",
         "hero KOPS (paper)", "hero KOPS (model)", "speedup (paper)",
         "speedup (model)"],
        rows, title="Table VIII — kernel performance comparison",
    )


def run_table10() -> str:
    """AVX2 CPU comparison (paper Table X)."""
    model = Avx2Model()
    rows = []
    for alias in _ALIASES:
        p = get_params(alias)
        rows.append([
            alias,
            PAPER["table10_avx2"]["single"][alias], round(model.kops(p), 4),
            PAPER["table10_avx2"]["threads16"][alias],
            round(model.kops(p, 16), 4),
        ])
    return format_table(
        ["set", "1T (paper)", "1T (model)", "16T (paper)", "16T (model)"],
        rows, title="Table X — AVX2 CPU throughput (KOPS)",
    )


def run_table11() -> str:
    """Compilation time (paper Table XI)."""
    model = CompileTimeModel()
    selections = {
        "128f": {"FORS_Sign": Branch.PTX},
        "192f": {"FORS_Sign": Branch.PTX},
        "256f": {k: Branch.PTX for k in _KERNELS},
    }
    rows = []
    for alias in _ALIASES:
        report = model.report(get_params(alias), selections[alias])
        paper = PAPER["table11_compile_s"][alias]
        rows.append([alias, paper["baseline"], round(report.baseline_s, 2),
                     paper["herosign"], round(report.herosign_s, 2)])
    return format_table(
        ["set", "baseline s (paper)", "baseline s (model)",
         "HERO s (paper)", "HERO s (model)"],
        rows, title="Table XI — average compilation time",
    )


def run_fig11(device: DeviceSpec | str | None = None) -> str:
    """FORS_Sign optimization ladder (paper Figure 11)."""
    dev, engine = _setup(device)
    rows = []
    for alias in _ALIASES:
        paper = PAPER["fig11_fors_steps_kops"][alias]
        for step in optimization_ladder(get_params(alias), dev, engine=engine):
            rows.append([alias, step.name, paper[step.name],
                         round(step.kops, 1),
                         f"{step.cumulative_speedup:.2f}x"])
    return format_table(
        ["set", "step", "KOPS (paper)", "KOPS (model)", "cumulative (model)"],
        rows, title="Figure 11 — FORS_Sign optimization steps",
    )


def run_fig12(device: DeviceSpec | str | None = None) -> str:
    """End-to-end strategies (paper Figure 12)."""
    dev, engine = _setup(device)
    rows = []
    for alias in _ALIASES:
        results = end_to_end_kops(get_params(alias), dev, engine=engine)
        paper = PAPER["fig12_e2e_kops"][alias]
        for mode in MODES:
            rows.append([alias, mode, paper[mode],
                         round(results[mode].kops, 2),
                         round(results[mode].launch_latency_us, 1)])
    return format_table(
        ["set", "mode", "KOPS (paper)", "KOPS (model)", "launch us (model)"],
        rows, title="Figure 12 — end-to-end performance",
    )


def run_all(device: DeviceSpec | str | None = None) -> str:
    """The full paper-vs-model report."""
    sections = [
        run_table2(device), run_table4(), run_table5(device),
        run_table8(device), run_table10(), run_table11(),
        run_fig11(device), run_fig12(device),
    ]
    return "\n\n".join(sections)
