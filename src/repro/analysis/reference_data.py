"""The paper's reported numbers, transcribed for side-by-side comparison.

Every benchmark prints its measured (model) values next to these, and
EXPERIMENTS.md records the comparison.  Keys use the short parameter-set
aliases (``"128f"`` etc.) and the kernel names ``FORS_Sign`` /
``TREE_Sign`` / ``WOTS_Sign``.
"""

from __future__ import annotations

PAPER: dict = {
    # Table II — TCAS-SPHINCSp time breakdown on RTX 4090 (ms).
    "table2_breakdown_ms": {
        "128f": {"FORS": 1.89, "idle": 2.27, "MSS": 6.57, "WOTS": 0.93},
        "192f": {"FORS": 7.75, "idle": 2.31, "MSS": 10.06, "WOTS": 1.33},
        "256f": {"FORS": 13.25, "idle": 2.29, "MSS": 26.55, "WOTS": 1.47},
    },
    # Table III — baseline kernel profile, 128f on RTX 4090.
    "table3_occupancy_128f": {
        "FORS_Sign": {"warp_occ": 17.0, "theoretical_occ": 66.67, "regs": 64},
        "TREE_Sign": {"warp_occ": 25.0, "theoretical_occ": 25.0, "regs": 128},
        "WOTS_Sign": {"warp_occ": 46.0, "theoretical_occ": 52.08, "regs": 72},
    },
    # Table IV — Tree Tuning search results on RTX 4090 (static smem).
    "table4_tuning": {
        "128f": {"smem_util": 0.6875, "thread_util": 0.6875, "F": 3},
        "192f": {"smem_util": 0.75, "thread_util": 0.75, "F": 2},
    },
    # Table V — PTX branch selection (True = PTX outperformed native).
    "table5_ptx_selection": {
        "128f": {"FORS_Sign": True, "TREE_Sign": False, "WOTS_Sign": False},
        "192f": {"FORS_Sign": True, "TREE_Sign": False, "WOTS_Sign": False},
        "256f": {"FORS_Sign": True, "TREE_Sign": True, "WOTS_Sign": True},
    },
    # Table VI — bank conflicts during reduction (block = 1), Nsight.
    "table6_bank_conflicts": {
        "128f": {"FORS_Sign": {"baseline": (22_099_968, 12_435_456), "padded": (0, 0)},
                 "TREE_Sign": {"baseline": (1_568, 704), "padded": (1, 0)}},
        "192f": {"FORS_Sign": {"baseline": (64_152, 30_096), "padded": (0, 0)},
                 "TREE_Sign": {"baseline": (1_203, 408), "padded": (1, 0)}},
        "256f": {"FORS_Sign": {"baseline": (400_960, 192_640), "padded": (0, 0)},
                 "TREE_Sign": {"baseline": (11_905, 5_377), "padded": (0, 0)}},
    },
    # Table VIII — kernel comparison (block = 1024) on RTX 4090.
    # (KOPS baseline, KOPS hero, occupancy baseline %, occupancy hero %)
    "table8_kernels": {
        "128f": {
            "FORS_Sign": {"kops": (442.9, 946.3), "occ": (27.09, 36.02),
                          "compute": (45.18, 56.37), "memory": (11.26, 9.83)},
            "TREE_Sign": {"kops": (125.2, 157.7), "occ": (23.65, 23.88),
                          "compute": (92.87, 97.67), "memory": (2.47, 1.88)},
            "WOTS_Sign": {"kops": (2493.1, 4915.7), "occ": (42.36, 46.54),
                          "compute": (43.63, 34.55), "memory": (73.70, 69.94)},
        },
        "192f": {
            "FORS_Sign": {"kops": (128.9, 222.0), "occ": (32.74, 47.05),
                          "compute": (44.69, 54.48), "memory": (10.21, 8.26)},
            "TREE_Sign": {"kops": (88.2, 93.6), "occ": (23.83, 23.87),
                          "compute": (95.57, 97.76), "memory": (4.73, 2.54)},
            "WOTS_Sign": {"kops": (1457.6, 2464.9), "occ": (31.44, 35.09),
                          "compute": (24.50, 22.37), "memory": (82.49, 84.23)},
        },
        "256f": {
            "FORS_Sign": {"kops": (66.6, 116.4), "occ": (32.60, 63.76),
                          "compute": (42.42, 66.37), "memory": (20.71, 13.55)},
            "TREE_Sign": {"kops": (36.4, 44.9), "occ": (18.53, 62.43),
                          "compute": (72.38, 96.17), "memory": (5.46, 10.42)},
            "WOTS_Sign": {"kops": (776.8, 1570.9), "occ": (35.37, 35.47),
                          "compute": (11.93, 12.77), "memory": (88.19, 86.80)},
        },
    },
    # Table IX — cross-platform throughput (KOPS) and power-per-signature.
    "table9_cross_platform": {
        "herosign_rtx4090_kops": {"128f": 119.47, "192f": 65.43, "256f": 33.88},
        "herosign_pps_watt": {"128f": 0.003, "192f": 0.002, "256f": 0.003},
        "berthet_fpga_kops": {"128f": 0.016, "256f": 0.00057},
        "berthet_fpga_pps": {"128f": 0.4, "256f": 0.474},
        "amiet_fpga_kops": {"128f": 0.99, "192f": 0.85, "256f": 0.40},
        "amiet_fpga_pps": {"128f": 9.76, "192f": 9.69, "256f": 9.80},
        "sphincslet_asic_kops": {"128f": 0.52, "192f": 0.20, "256f": 0.10},
    },
    # Table X — AVX2 CPU throughput (KOPS).
    "table10_avx2": {
        "single": {"128f": 0.143, "192f": 0.087, "256f": 0.044},
        "threads16": {"128f": 0.828, "192f": 0.560, "256f": 0.356},
    },
    # Table XI — average compilation time (s), block sizes 2..1024.
    "table11_compile_s": {
        "128f": {"baseline": 18.68, "herosign": 14.61},
        "192f": {"baseline": 23.25, "herosign": 21.72},
        "256f": {"baseline": 24.19, "herosign": 19.18},
    },
    # Figure 11 — FORS_Sign optimization steps (KOPS), RTX 4090.
    "fig11_fors_steps_kops": {
        "128f": {"Baseline": 442.9, "MMTP": 702.7, "+FS": 721.8,
                 "+PTX": 752.0, "+HybridME": 915.9, "+FreeBank": 946.3},
        "192f": {"Baseline": 128.9, "MMTP": 174.1, "+FS": 178.6,
                 "+PTX": 206.4, "+HybridME": 219.1, "+FreeBank": 222.0},
        "256f": {"Baseline": 66.6, "MMTP": 73.5, "+FS": 91.9,
                 "+PTX": 97.8, "+HybridME": 106.7, "+FreeBank": 116.4},
    },
    # Figure 12 — end-to-end performance (KOPS) and launch latency (us).
    "fig12_e2e_kops": {
        "128f": {"baseline": 93.17, "baseline-graph": 97.54,
                 "streams": 116.48, "graph": 119.47},
        "192f": {"baseline": 51.18, "baseline-graph": 56.50,
                 "streams": 60.94, "graph": 65.43},
        "256f": {"baseline": 23.93, "baseline-graph": 25.74,
                 "streams": 31.28, "graph": 33.88},
    },
    "fig12_launch_latency_us": {
        "128f": {"baseline": 4270.0, "streams": 308.06, "graph": 49.41},
        "192f": {"baseline": 4439.0, "streams": 2722.75, "graph": 42.97},
        "256f": {"baseline": 7102.0, "streams": 5025.00, "graph": 32.10},
    },
    # Figure 13 — speedup range over block sizes 2..1024 (graph mode).
    "fig13_speedup_range": {
        "128f": (3.10, 1.28), "192f": (2.92, 1.28), "256f": (2.60, 1.42),
    },
    # Figure 14 — cross-architecture speedups (HERO-Sign with graph).
    "fig14_speedups": {
        "Pascal": {"128f": 1.17, "192f": 1.15, "256f": 1.34},
        "Volta": {"128f": 1.18, "192f": 1.20, "256f": 1.43},
        "Turing": {"128f": 1.24, "192f": 1.28, "256f": 1.33},
        "Ampere": {"128f": 1.42, "192f": 1.16, "256f": 1.31},
        "Hopper": {"128f": 1.41, "192f": 1.17, "256f": 1.88},
    },
    # §IV-E.3 — input-size sensitivity average speedups.
    "input_size_avg_speedup": {"128f": 1.30, "192f": 1.28, "256f": 1.45},
}
