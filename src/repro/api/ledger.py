"""Client-side verification for transparency-log inclusion proofs.

The server's ``log-proof`` verb answers with a self-contained
:class:`~repro.ledger.service.InclusionProof`; :func:`verify_inclusion`
is the trust boundary on the client side.  It re-derives the tree head
from the proof path locally (pure hashing, no trust in the server) and
checks both signatures — the checkpoint's and the entry's own batch
signature — through the *served* ``verify`` verb, so the same keystore
that signed the log vouches for it.  A proof only passes when every
link holds:

1. the entry's leaf hash plus the audit path reproduce exactly the
   root the checkpoint claims, and
2. the checkpoint signature verifies over the canonical checkpoint
   body (recomputed from the claims, never taken off the wire), and
3. the entry's embedded batch signature verifies over its payload.

Any mismatch answers ``False`` — a proof is evidence, not an error;
exceptions are reserved for malformed input and transport failures.
"""

from __future__ import annotations

from ..errors import LedgerError
from ..ledger.merkle import leaf_hash, root_from_inclusion_path
from ..ledger.service import InclusionProof, decode_entry

__all__ = ["verify_inclusion"]


def verify_inclusion(client, proof: InclusionProof | dict, *,
                     check_entry_signature: bool = True) -> bool:
    """Check *proof* end to end against the service at *client*.

    *client* is any typed signing client (local / pooled / tcp /
    cluster) whose keystore holds the log tenant's key; *proof* is an
    :class:`~repro.ledger.service.InclusionProof` or its wire dict (the
    ``log-proof`` response body).  ``check_entry_signature=False`` skips
    step 3 for entries whose payloads are externally signed.
    """
    if isinstance(proof, dict):
        proof = InclusionProof.from_dict(proof)
    checkpoint = proof.checkpoint
    if proof.size != checkpoint.size:
        return False
    try:
        root = root_from_inclusion_path(
            proof.index, proof.size, leaf_hash(proof.entry),
            list(proof.path))
    except LedgerError:
        return False
    if root != checkpoint.root:
        return False
    if not client.verify(checkpoint.tenant, checkpoint.body,
                         checkpoint.signature, key=checkpoint.key).valid:
        return False
    if check_entry_signature:
        try:
            payload, signature = decode_entry(proof.entry)
        except LedgerError:
            return False
        if not client.verify(checkpoint.tenant, payload, signature,
                             key=checkpoint.key).valid:
            return False
    return True
