"""The TCP transports: typed clients over the wire protocol.

:class:`AsyncClient` is the asyncio-native typed client: it wraps the
wire-level :class:`~repro.service.client.ServiceClient` (pipelined
frames, id matching), performs the ``hello`` version/capability
negotiation at connect time, chunks ``sign_many`` into ``max_batch``
frames, and returns the same typed results as every other transport.
By default it offers protocol v3 — zero-copy binary frames with
streamed ``sign-many`` results — and transparently downgrades to the
v2 JSON lines against an older server (``min_version`` guards how far
down it will go); the typed surface is identical either way.

:class:`TcpClient` is the synchronous facade for non-async callers: it
runs an :class:`AsyncClient` on a dedicated background event loop thread
and bridges each call with ``run_coroutine_threadsafe`` — so
``client.sign(...)`` blocks exactly like the local transport while the
socket stays pipelined underneath.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Sequence

from ..errors import ServiceError, UnsupportedVersionError
from ..obs.trace import TraceContext, Tracer, current_trace, start_trace
from ..service import protocol
from ..service.client import ServiceClient
from .base import SigningClient
from .model import (ServiceInfo, SignRequest, SignResult, VerifyRequest,
                    VerifyResult)

__all__ = ["AsyncClient", "TcpClient"]


def _sign_result(response: dict, request: SignRequest,
                 signature: bytes | None = None,
                 transport: str = "tcp") -> SignResult:
    return SignResult(
        signature=(signature if signature is not None
                   else protocol.unpack_bytes(response["signature"],
                                              name="signature")),
        tenant=request.tenant, key=request.key,
        params=response["params"], backend=response["backend"],
        batch_size=response["batch_size"],
        wait_ms=response["wait_ms"], total_ms=response["total_ms"],
        transport=transport,
    )


class AsyncClient:
    """Typed asyncio client over protocol v3 (or the v2 downgrade).

    Construct with :meth:`connect`, which negotiates the protocol
    version; the server's downgrade offer is rejected with
    :class:`UnsupportedVersionError` when it falls below *min_version*.
    On a v3 grant the wire client flips to binary frames automatically —
    sign/verify ride the zero-copy codec and ``sign_many`` streams per
    item.  The negotiated capabilities are available as :meth:`info`
    without a round trip.
    """

    transport = "tcp"

    def __init__(self, wire: ServiceClient, info: ServiceInfo,
                 trace_ok: bool = False, tracer: Tracer | None = None):
        self._wire = wire
        self._info = info
        # Whether the server's hello advertised the trace capability.
        # Kept private (not on the frozen ServiceInfo): it gates what
        # this client *sends*, it is not part of the typed result surface.
        self._trace_ok = trace_ok
        self._tracer = tracer

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 7744,
                      version: int = protocol.PROTOCOL_VERSION,
                      min_version: int = 2,
                      tracer: Tracer | None = None) -> "AsyncClient":
        wire = await ServiceClient.open(host, port)
        try:
            hello = await wire.request({"op": "hello", "version": version})
        except ServiceError as exc:
            await wire.close()
            if isinstance(exc, UnsupportedVersionError):
                raise
            raise UnsupportedVersionError(
                f"server at {host}:{port} did not answer the hello "
                f"handshake ({exc}); it may be a pre-v2 build — the "
                "wire-level repro.service.ServiceClient still speaks v1"
            ) from exc
        negotiated = hello.get("version")
        if not isinstance(negotiated, int) or negotiated < min_version:
            await wire.close()
            raise UnsupportedVersionError(
                f"server offered protocol v{negotiated}, below the "
                f"required minimum v{min_version}"
            )
        info = ServiceInfo(
            transport=cls.transport,
            server=hello.get("server", "unknown"),
            protocol_version=negotiated,
            verbs=tuple(hello.get("verbs", ())),
            backend=hello.get("backend", "unknown"),
            workers=hello.get("workers", 0),
            max_batch=hello.get("max_batch"),
            parameter_sets=tuple(hello.get("parameter_sets", ())),
        )
        return cls(wire, info, trace_ok=bool(hello.get("trace")),
                   tracer=tracer)

    # ------------------------------------------------------------------
    # Typed API (mirrors the sync SigningClient surface)
    # ------------------------------------------------------------------
    async def sign(self, tenant: str, message: bytes, key: str = "default",
                   deadline_ms: float | None = None) -> SignResult:
        return await self._sign(SignRequest(tenant=tenant, message=message,
                                            key=key,
                                            deadline_ms=deadline_ms))

    async def sign_many(self, tenant: str, messages: Sequence[bytes],
                        key: str = "default",
                        deadline_ms: float | None = None
                        ) -> list[SignResult]:
        requests = [SignRequest(tenant=tenant, message=message, key=key,
                                deadline_ms=deadline_ms)
                    for message in messages]
        return await self._sign_many(requests) if requests else []

    async def verify(self, tenant: str, message: bytes, signature: bytes,
                     key: str = "default") -> VerifyResult:
        return await self._verify(VerifyRequest(
            tenant=tenant, message=message, signature=signature, key=key))

    async def verify_many(self, tenant: str, messages: Sequence[bytes],
                          signatures: Sequence[bytes],
                          key: str = "default") -> list[VerifyResult]:
        if len(messages) != len(signatures):
            raise ValueError(
                f"verify_many pairs each message with a signature: got "
                f"{len(messages)} messages, {len(signatures)} signatures")
        requests = [VerifyRequest(tenant=tenant, message=message,
                                  signature=signature, key=key)
                    for message, signature in zip(messages, signatures)]
        return await self._verify_many(requests) if requests else []

    def info(self) -> ServiceInfo:
        """The capabilities negotiated at connect time."""
        return self._info

    async def keys(self, tenant: str) -> tuple[str, ...]:
        response = await self._wire.request({"op": "keys",
                                             "tenant": tenant})
        return tuple(response["keys"])

    async def ping(self) -> bool:
        return (await self._wire.request({"op": "ping"}))["ok"] is True

    async def stats(self) -> dict:
        return (await self._wire.request({"op": "stats"}))["stats"]

    async def close(self) -> None:
        await self._wire.close()

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Transport primitives (request-object level, shared with TcpClient)
    # ------------------------------------------------------------------
    def _message_budget(self) -> int:
        """Raw message bytes one frame can carry in the current mode:
        v3 frames skip base64, so the same 1 MiB wire cap fits ~33%
        more payload than a v2 JSON line."""
        return (protocol.MAX_MESSAGE_BYTES_V3 if self._wire.binary
                else protocol.MAX_MESSAGE_BYTES)

    def _check_frame_fit(self, message: bytes, extra: int = 0) -> None:
        """Reject payloads whose frame would overflow the server's wire
        limit *before* writing — an oversized frame is answered with an
        unmatchable error and costs the whole connection.  ``extra``
        counts other raw binary riding the same frame (a verify frame
        carries the signature next to the message)."""
        budget = self._message_budget()
        if len(message) + extra > budget:
            from ..errors import ProtocolError

            raise ProtocolError(
                f"message of {len(message)} bytes exceeds the wire "
                f"frame bound ({budget - extra} "
                "bytes for this verb); sign a digest instead, or use "
                "the local transport"
            )

    def _trace_for_frame(self) -> TraceContext | None:
        """The trace context this frame should carry, if any.

        Only when the server advertised the capability: the ambient
        context wins (a caller already inside a trace), else a client
        tracer starts a fresh root trace per frame.
        """
        if not self._trace_ok:
            return None
        ctx = current_trace()
        if ctx is None and self._tracer is not None:
            ctx = start_trace()
        return ctx

    async def _sign(self, request: SignRequest) -> SignResult:
        self._check_frame_fit(request.message)
        ctx = self._trace_for_frame()
        # Span timestamps anchor on one wall-clock read; the duration
        # comes from the monotonic clock, so a wall step (NTP) cannot
        # produce a negative or inflated client-request span.
        started_wall = time.time()
        started_mono = time.perf_counter()
        if self._wire.binary:
            response = await self._wire.request_frame(
                protocol.FRAME_CODES["sign"],
                protocol.pack_sign_request(
                    request.tenant, request.key, request.message,
                    request.deadline_ms,
                    ctx.trace_id if ctx is not None else None))
            signature = response["signature"]
        else:
            payload = {"op": "sign", "tenant": request.tenant,
                       "key": request.key,
                       "message": protocol.pack_bytes(request.message)}
            if request.deadline_ms is not None:
                payload["deadline_ms"] = request.deadline_ms
            if ctx is not None:
                payload["trace"] = ctx.trace_id
            response = await self._wire.request(payload)
            signature = None
        if ctx is not None and self._tracer is not None:
            self._tracer.record_span(
                "client-request", trace=ctx, span_id=ctx.span_id,
                start=started_wall,
                end=started_wall + (time.perf_counter() - started_mono),
                tenant=request.tenant, key=request.key)
        return _sign_result(response, request, signature=signature,
                            transport=self.transport)

    def _chunk(self, requests: Sequence[SignRequest]
               ) -> list[list[SignRequest]]:
        """Chunk greedily by both the server's max_batch and the frame's
        byte budget (many large messages must not overflow one frame);
        frames pipeline on one socket, so chunking costs latency only
        when the server is the bottleneck.  Never emits an empty chunk —
        an empty batch means no chunks, and therefore no wire traffic.
        """
        limit = self._info.max_batch or len(requests)
        budget = self._message_budget()
        chunks: list[list[SignRequest]] = []
        chunk_bytes = 0
        for request in requests:
            size = len(request.message)
            if not chunks or len(chunks[-1]) >= limit \
                    or chunk_bytes + size > budget:
                chunks.append([])
                chunk_bytes = 0
            chunks[-1].append(request)
            chunk_bytes += size
        return chunks

    async def _sign_many(self, requests: Sequence[SignRequest]
                         ) -> list[SignResult]:
        if not requests:
            # Nothing to sign: answering locally matters because a
            # zero-message sign-many frame is a protocol error — the old
            # chunker seeded one empty chunk and sent it anyway.
            return []
        for request in requests:
            self._check_frame_fit(request.message)
        chunks = self._chunk(requests)
        contexts = [self._trace_for_frame() for _ in chunks]
        started_wall = time.time()
        started_mono = time.perf_counter()
        if self._wire.binary:
            responses = await asyncio.gather(*(
                self._wire.sign_many_stream(
                    chunk[0].tenant,
                    [request.message for request in chunk],
                    key_name=chunk[0].key,
                    deadline_ms=chunk[0].deadline_ms,
                    trace=ctx.trace_id if ctx is not None else None)
                for chunk, ctx in zip(chunks, contexts)))
        else:
            responses = [response["results"] for response in
                         await asyncio.gather(*(
                             self._wire.request({
                                 "op": "sign-many",
                                 "tenant": chunk[0].tenant,
                                 "key": chunk[0].key,
                                 "messages": [
                                     protocol.pack_bytes(request.message)
                                     for request in chunk],
                                 **({"deadline_ms": chunk[0].deadline_ms}
                                    if chunk[0].deadline_ms is not None
                                    else {}),
                                 **({"trace": ctx.trace_id}
                                    if ctx is not None else {}),
                             }) for chunk, ctx in zip(chunks, contexts)))]
        if self._tracer is not None:
            ended = started_wall + (time.perf_counter() - started_mono)
            for chunk, ctx in zip(chunks, contexts):
                if ctx is not None:
                    self._tracer.record_span(
                        "client-request", trace=ctx, span_id=ctx.span_id,
                        start=started_wall, end=ended,
                        tenant=chunk[0].tenant, key=chunk[0].key,
                        batch_size=len(chunk))
        results: list[SignResult] = []
        for chunk, items in zip(chunks, responses):
            for request, item in zip(chunk, items):
                if not item.get("ok"):
                    raise protocol.error_type(item.get("error"))(
                        item.get("detail", "sign-many item failed"))
                signature = item["signature"]
                results.append(_sign_result(
                    item, request,
                    signature=(signature if isinstance(signature, bytes)
                               else None),
                    transport=self.transport))
        return results

    async def _verify(self, request: VerifyRequest) -> VerifyResult:
        self._check_frame_fit(request.message,
                              extra=len(request.signature))
        if self._wire.binary:
            response = await self._wire.request_frame(
                protocol.FRAME_CODES["verify"],
                protocol.pack_verify_request(
                    request.tenant, request.key, request.message,
                    request.signature))
        else:
            response = await self._wire.request({
                "op": "verify", "tenant": request.tenant,
                "key": request.key,
                "message": protocol.pack_bytes(request.message),
                "signature": protocol.pack_bytes(request.signature),
            })
        return VerifyResult(valid=response["valid"], tenant=request.tenant,
                            key=request.key, params=response["params"],
                            transport=self.transport)

    async def _verify_many(self, requests: Sequence[VerifyRequest]
                           ) -> list[VerifyResult]:
        if not requests:
            return []
        for request in requests:
            self._check_frame_fit(request.message,
                                  extra=len(request.signature))
        # Chunk like sign_many, but the byte budget counts both halves of
        # each pair — message and signature ride the same frame.
        limit = self._info.max_batch or len(requests)
        budget = self._message_budget()
        chunks: list[list[VerifyRequest]] = []
        chunk_bytes = 0
        for request in requests:
            size = len(request.message) + len(request.signature)
            if not chunks or len(chunks[-1]) >= limit \
                    or chunk_bytes + size > budget:
                chunks.append([])
                chunk_bytes = 0
            chunks[-1].append(request)
            chunk_bytes += size
        if self._wire.binary:
            responses = await asyncio.gather(*(
                self._wire.request_frame(
                    protocol.FRAME_CODES["verify-many"],
                    protocol.pack_verify_many_request(
                        chunk[0].tenant, chunk[0].key,
                        [request.message for request in chunk],
                        [request.signature for request in chunk]))
                for chunk in chunks))
        else:
            responses = await asyncio.gather(*(
                self._wire.request({
                    "op": "verify-many", "tenant": chunk[0].tenant,
                    "key": chunk[0].key,
                    "messages": [protocol.pack_bytes(request.message)
                                 for request in chunk],
                    "signatures": [protocol.pack_bytes(request.signature)
                                   for request in chunk],
                }) for chunk in chunks))
        results: list[VerifyResult] = []
        for chunk, response in zip(chunks, responses):
            for request, item in zip(chunk, response["results"]):
                if not item.get("ok"):
                    raise protocol.error_type(item.get("error"))(
                        item.get("detail", "verify-many item failed"))
                results.append(VerifyResult(
                    valid=item["valid"], tenant=request.tenant,
                    key=request.key, params=item["params"],
                    transport=self.transport))
        return results


class TcpClient(SigningClient):
    """Synchronous typed client over TCP.

    Owns a daemon thread running a private event loop that hosts an
    :class:`AsyncClient`; every call bridges onto it and blocks for the
    result.  ``timeout`` bounds each bridged call (None = wait forever —
    the -s parameter sets sign in seconds, not milliseconds).
    """

    transport = "tcp"
    #: The async client class this facade hosts — subclasses (the
    #: cluster transport) swap it without reimplementing the bridging.
    _async_cls: type[AsyncClient] = AsyncClient

    def __init__(self, client: AsyncClient, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, timeout: float | None = 600.0):
        self._client = client
        self._loop = loop
        self._thread = thread
        self.timeout = timeout
        self._closed = False

    @classmethod
    def connect(cls, host: str = "127.0.0.1", port: int = 7744,
                version: int = protocol.PROTOCOL_VERSION,
                min_version: int = 2,
                timeout: float | None = 600.0) -> "TcpClient":
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever,
                                  name="repro-api-tcp", daemon=True)
        thread.start()
        try:
            client = asyncio.run_coroutine_threadsafe(
                cls._async_cls.connect(host, port, version=version,
                                       min_version=min_version),
                loop).result(timeout)
        except BaseException:
            loop.call_soon_threadsafe(loop.stop)
            thread.join()
            loop.close()
            raise
        return cls(client, loop, thread, timeout=timeout)

    def _call(self, coroutine):
        if self._closed:
            coroutine.close()  # never scheduled; silence the RuntimeWarning
            raise ServiceError("client closed; reconnect to continue")
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop).result(self.timeout)

    # ------------------------------------------------------------------
    def _sign(self, request: SignRequest) -> SignResult:
        return self._call(self._client._sign(request))

    def _sign_many(self,
                   requests: Sequence[SignRequest]) -> list[SignResult]:
        return self._call(self._client._sign_many(requests))

    def _verify(self, request: VerifyRequest) -> VerifyResult:
        return self._call(self._client._verify(request))

    def _verify_many(self, requests: Sequence[VerifyRequest]
                     ) -> list[VerifyResult]:
        return self._call(self._client._verify_many(requests))

    def info(self) -> ServiceInfo:
        return self._client.info()

    def keys(self, tenant: str) -> tuple[str, ...]:
        return self._call(self._client.keys(tenant))

    def ping(self) -> bool:
        return self._call(self._client.ping())

    def stats(self) -> dict:
        return self._call(self._client.stats())

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._call(self._client.close())
        finally:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()
