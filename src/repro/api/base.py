"""The abstract :class:`SigningClient` every transport implements.

The public methods (``sign`` / ``verify`` / ``sign_many`` / ``info`` /
``keys``) live here and do three things identically for every transport:
build the typed request objects (which validate), delegate to the
transport's ``_sign`` / ``_verify`` / ``_sign_many`` primitives, and
return the typed results.  A transport therefore cannot drift on
argument validation or call shape — only on how it executes.
"""

from __future__ import annotations

import abc
from typing import Sequence

from .model import (ServiceInfo, SignRequest, SignResult, VerifyRequest,
                    VerifyResult)

__all__ = ["SigningClient"]


class SigningClient(abc.ABC):
    """Synchronous typed client facade over one execution tier.

    Use as a context manager so transport resources (sockets, worker
    pools, event-loop threads) are released deterministically::

        with api.connect("local", keystore=ks) as client:
            result = client.sign("acme", b"payload")
            assert client.verify("acme", b"payload",
                                 result.signature).valid
    """

    #: Transport label stamped into every result (``local`` / ``pooled``
    #: / ``tcp``); set by each concrete class.
    transport: str = "abstract"

    # ------------------------------------------------------------------
    # Public API (identical across transports)
    # ------------------------------------------------------------------
    def sign(self, tenant: str, message: bytes, key: str = "default",
             deadline_ms: float | None = None) -> SignResult:
        """Sign *message* under the tenant's named key."""
        return self._sign(SignRequest(tenant=tenant, message=message,
                                      key=key, deadline_ms=deadline_ms))

    def sign_many(self, tenant: str, messages: Sequence[bytes],
                  key: str = "default",
                  deadline_ms: float | None = None) -> list[SignResult]:
        """Sign every message in *messages* under one tenant key.

        The batched entry point: transports amortize framing and batch
        the work (a TCP client packs ``max_batch``-sized ``sign-many``
        frames; the local client signs one scheduler batch).  Lists
        larger than the transport's frame cap are chunked transparently.

        All-or-nothing on every transport: if any message fails (shed,
        backend error), the whole call raises that typed error and no
        partial results are returned — resubmit the batch.  Callers that
        need per-item recovery on a remote service can speak the wire
        ``sign-many`` verb directly, which reports per-item outcomes.
        """
        requests = [SignRequest(tenant=tenant, message=message, key=key,
                                deadline_ms=deadline_ms)
                    for message in messages]
        return self._sign_many(requests) if requests else []

    def verify(self, tenant: str, message: bytes, signature: bytes,
               key: str = "default") -> VerifyResult:
        """Check *signature* over *message* under the tenant's named key.

        A bad signature returns ``valid=False``; exceptions are reserved
        for unknown tenants/keys and transport failures.
        """
        return self._verify(VerifyRequest(tenant=tenant, message=message,
                                          signature=signature, key=key))

    def verify_many(self, tenant: str, messages: Sequence[bytes],
                    signatures: Sequence[bytes],
                    key: str = "default") -> list[VerifyResult]:
        """Check each ``(message, signature)`` pair under one tenant key.

        The batched counterpart of :meth:`verify`, mirroring
        :meth:`sign_many`: remote transports pack ``verify-many`` frames
        (chunked to the server's ``max_batch``), the local client loops.
        Each pair answers in order with its own :class:`VerifyResult` —
        an invalid signature is a result (``valid=False``), not an
        error.  Unknown tenants/keys and transport failures raise.
        """
        if len(messages) != len(signatures):
            raise ValueError(
                f"verify_many pairs each message with a signature: got "
                f"{len(messages)} messages, {len(signatures)} signatures")
        requests = [VerifyRequest(tenant=tenant, message=message,
                                  signature=signature, key=key)
                    for message, signature in zip(messages, signatures)]
        return self._verify_many(requests) if requests else []

    @abc.abstractmethod
    def info(self) -> ServiceInfo:
        """The endpoint's capability advertisement."""

    @abc.abstractmethod
    def keys(self, tenant: str) -> tuple[str, ...]:
        """The tenant's named keys (sorted)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release transport resources; idempotent."""

    # ------------------------------------------------------------------
    # Transport primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _sign(self, request: SignRequest) -> SignResult: ...

    @abc.abstractmethod
    def _sign_many(self,
                   requests: Sequence[SignRequest]) -> list[SignResult]: ...

    @abc.abstractmethod
    def _verify(self, request: VerifyRequest) -> VerifyResult: ...

    def _verify_many(self, requests: Sequence[VerifyRequest]
                     ) -> list[VerifyResult]:
        # Default: per-pair loop.  In-process transports keep it (one
        # scheme call each either way); wire transports override to pack
        # batched verify-many frames.
        return [self._verify(request) for request in requests]

    # ------------------------------------------------------------------
    def __enter__(self) -> "SigningClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} transport={self.transport!r}>"
