"""Introspect the public surface of ``repro.api`` for the snapshot gate.

:func:`api_surface` renders every name in ``repro.api.__all__`` into a
plain, deterministic, JSON-serializable description — dataclass fields
with their annotations, class method signatures, exception bases,
function signatures.  The test suite pins the output in
``tests/api_surface.json``: any drift (a renamed field, a changed
default, a dropped method) fails CI until the snapshot is regenerated
*deliberately* with ``pytest --regen-api-surface`` — the same
regenerate-on-purpose workflow the KAT vectors use.
"""

from __future__ import annotations

import dataclasses
import inspect

__all__ = ["api_surface"]

#: Snapshot format version; bump when the *shape* of the snapshot
#: changes (not when the API changes — that is the point of the gate).
SURFACE_FORMAT = 1


def _describe_dataclass(symbol: type) -> dict:
    return {
        "kind": "dataclass",
        "fields": {
            spec.name: {
                "type": (spec.type if isinstance(spec.type, str)
                         else getattr(spec.type, "__name__",
                                      repr(spec.type))),
                "has_default": (spec.default
                                is not dataclasses.MISSING
                                or spec.default_factory
                                is not dataclasses.MISSING),
            }
            for spec in dataclasses.fields(symbol)
        },
        "methods": _public_methods(symbol, skip_dataclass_protocol=True),
    }


def _public_methods(symbol: type,
                    skip_dataclass_protocol: bool = False) -> dict:
    methods = {}
    for name, member in sorted(vars(symbol).items()):
        if name.startswith("_") and name not in ("__init__",):
            continue
        if skip_dataclass_protocol and name == "__init__":
            continue  # derived from the fields, already captured
        if isinstance(member, (classmethod, staticmethod)):
            member = member.__func__
        if callable(member):
            try:
                methods[name] = str(inspect.signature(member))
            except (TypeError, ValueError):
                methods[name] = "(...)"
    return methods


def _describe(name: str, symbol: object) -> dict:
    if dataclasses.is_dataclass(symbol) and isinstance(symbol, type):
        return _describe_dataclass(symbol)
    if isinstance(symbol, type) and issubclass(symbol, BaseException):
        return {
            "kind": "exception",
            "bases": [base.__name__ for base in symbol.__mro__[1:]
                      if base not in (object, BaseException, Exception)],
        }
    if isinstance(symbol, type):
        return {"kind": "class", "methods": _public_methods(symbol)}
    if callable(symbol):
        return {"kind": "function",
                "signature": str(inspect.signature(symbol))}
    return {"kind": "constant", "value": repr(symbol)}


def api_surface() -> dict:
    """The pinned-snapshot description of ``repro.api``'s public names."""
    from . import __all__ as public_names
    import repro.api as api_module

    return {
        "format": SURFACE_FORMAT,
        "symbols": {name: _describe(name, getattr(api_module, name))
                    for name in sorted(public_names)},
    }
