"""The in-process transport: a typed client over the batch runtime.

:class:`LocalClient` fronts a :class:`~repro.runtime.scheduler.BatchScheduler`
per ``(tenant, key)`` — tenant keys come from a
:class:`~repro.service.keystore.Keystore` (injected through the
scheduler's ``keys_provider`` hook), and any registered backend can
execute, including ``pooled`` for multi-core fan-out.  One ``sign_many``
call is one scheduler batch, so the local transport exposes exactly the
amortization the runtime was built for.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..obs.trace import current_trace, start_trace, use_trace
from ..runtime.scheduler import BatchScheduler, BatchStats
from ..service.keystore import Keystore, derive_seed
from ..sphincs.signer import Sphincs
from .base import SigningClient
from .model import (ServiceInfo, SignRequest, SignResult, VerifyRequest,
                    VerifyResult)

__all__ = ["LocalClient"]

#: Queues never auto-dispatch: every facade call flushes explicitly, so
#: one ``sign_many`` call maps to exactly one scheduler batch.
_NEVER_AUTODISPATCH = 1 << 30


class LocalClient(SigningClient):
    """Sign in-process through the batch runtime.

    Parameters
    ----------
    keystore:
        Tenant/key registry; defaults to a fresh in-memory store
        (populate it with :meth:`add_tenant`).
    backend:
        Any registered runtime backend — ``vectorized`` (default),
        ``scalar``, ``modeled-gpu``, or ``pooled`` for the multi-core
        worker-pool tier.
    backend_options:
        Per-backend constructor kwargs, e.g.
        ``{"pooled": {"workers": 4}}``.
    transport_label:
        Result/telemetry label; defaults to ``"pooled"`` when the pooled
        backend executes, ``"local"`` otherwise.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`.  Each facade call
        records a root ``client-request`` span and runs its scheduler
        batch inside that trace context, so the scheduler's ``sign`` and
        stage spans join the same trace.
    """

    def __init__(self, keystore: Keystore | None = None,
                 backend: str = "vectorized",
                 deterministic: bool = False,
                 backend_options: dict[str, dict] | None = None,
                 transport_label: str | None = None,
                 tracer=None):
        self.keystore = keystore if keystore is not None else Keystore()
        self.backend_name = backend
        self.deterministic = deterministic
        self.tracer = tracer
        self.backend_options = dict(backend_options or {})
        self.transport = transport_label or (
            "pooled" if backend == "pooled" else "local")
        self._schedulers: dict[tuple[str, str], BatchScheduler] = {}
        self._pool = None
        self._owns_pool = False
        if backend == "pooled":
            # One worker pool shared by every (tenant, key) scheduler —
            # without this, each tenant would spawn its own processes.
            options = dict(self.backend_options.get("pooled", {}))
            if options.get("pool") is None:
                from ..runtime.pool import WorkerPool

                options["pool"] = WorkerPool(
                    workers=options.pop("workers", 2),
                    backend=options.pop("inner", "vectorized"),
                    deterministic=deterministic)
                self._owns_pool = True
            self._pool = options["pool"]
            self.backend_options["pooled"] = options
        self._closed = False

    # ------------------------------------------------------------------
    # Tenant management convenience (local transport only: remote tenants
    # are provisioned server-side)
    # ------------------------------------------------------------------
    def add_tenant(self, tenant: str, params: str = "128f",
                   key: str = "default",
                   seed: bytes | None = None) -> None:
        """Register *tenant* and generate its named key if absent.

        With ``deterministic=True`` and no explicit seed, the key derives
        from ``"<tenant>/<key>"`` — the same convention the service CLI
        uses, so local and served deterministic tenants agree.
        """
        record = self.keystore.add_tenant(tenant, params, exist_ok=True)
        if key not in self.keystore.key_names(tenant):
            if seed is None and self.deterministic:
                from ..params import get_params

                seed = derive_seed(f"{tenant}/{key}",
                                   get_params(record.params).n)
            self.keystore.generate_key(tenant, key, seed=seed)

    # ------------------------------------------------------------------
    # Transport primitives
    # ------------------------------------------------------------------
    def _scheduler_for(self, tenant: str, key: str) -> BatchScheduler:
        entry = self._schedulers.get((tenant, key))
        if entry is None:
            keys, _ = self.keystore.resolve(tenant, key)
            entry = BatchScheduler(
                target_batch_size=_NEVER_AUTODISPATCH,
                backend=self.backend_name,
                deterministic=self.deterministic,
                backend_options=self.backend_options,
                keys_provider=lambda params_name, _keys=keys: _keys,
                tracer=self.tracer,
            )
            self._schedulers[(tenant, key)] = entry
        return entry

    def _result(self, request: SignRequest, signature: bytes,
                stats: BatchStats) -> SignResult:
        return SignResult(
            signature=signature, tenant=request.tenant, key=request.key,
            params=stats.params, backend=stats.backend,
            batch_size=stats.count, wait_ms=0.0,
            total_ms=round(stats.elapsed_s * 1000.0, 3),
            transport=self.transport,
        )

    def _sign(self, request: SignRequest) -> SignResult:
        return self._sign_many([request])[0]

    def _sign_many(self,
                   requests: Sequence[SignRequest]) -> list[SignResult]:
        # Group by (tenant, key): each group is one scheduler batch, and
        # results come back in request order.
        groups: dict[tuple[str, str], list[tuple[int, SignRequest]]] = {}
        for index, request in enumerate(requests):
            groups.setdefault((request.tenant, request.key), []).append(
                (index, request))
        results: list[SignResult | None] = [None] * len(requests)
        for (tenant, key), members in groups.items():
            _, params_name = self.keystore.resolve(tenant, key)
            scheduler = self._scheduler_for(tenant, key)
            if self.tracer is not None:
                # One trace per facade batch: the root client-request
                # span plus the scheduler's sign/stage spans underneath.
                ctx = current_trace() or start_trace()
                # Wall clock anchors the span; duration is monotonic so
                # an NTP step mid-batch cannot distort it.
                started = time.time()
                started_mono = time.perf_counter()
                with use_trace(ctx):
                    tickets = [scheduler.submit(request.message,
                                                params=params_name)
                               for _, request in members]
                    [stats] = scheduler.flush()
                self.tracer.record_span(
                    "client-request", trace=ctx, span_id=ctx.span_id,
                    start=started,
                    end=started + (time.perf_counter() - started_mono),
                    tenant=tenant, key=key, batch_size=len(members))
            else:
                tickets = [scheduler.submit(request.message,
                                            params=params_name)
                           for _, request in members]
                [stats] = scheduler.flush()
            for (index, request), ticket in zip(members, tickets):
                signature = scheduler.claim(ticket)
                assert signature is not None  # flushed above
                results[index] = self._result(request, signature, stats)
        return [result for result in results if result is not None]

    def _verify(self, request: VerifyRequest) -> VerifyResult:
        keys, params_name = self.keystore.resolve(request.tenant,
                                                  request.key)
        valid = Sphincs(params_name).verify(request.message,
                                            request.signature, keys.public)
        return VerifyResult(valid=valid, tenant=request.tenant,
                            key=request.key, params=params_name,
                            transport=self.transport)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def info(self) -> ServiceInfo:
        workers = self._pool.workers if self._pool is not None else 0
        return ServiceInfo(
            transport=self.transport,
            server="in-process",
            protocol_version=2,
            verbs=("info", "keys", "sign", "sign-many", "verify",
                   "verify-many"),
            backend=self.backend_name,
            workers=workers,
            max_batch=None,  # no wire frame: one call, one batch, any size
            parameter_sets=tuple(sorted({
                self.keystore.params_for(name)
                for name in self.keystore.tenants()})),
        )

    def keys(self, tenant: str) -> tuple[str, ...]:
        return self.keystore.key_names(tenant)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._schedulers.clear()
        if self._pool is not None and self._owns_pool:
            self._pool.close()
