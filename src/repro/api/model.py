"""Typed request/response model shared by every ``repro.api`` transport.

One request shape, one result shape, one error surface — whether the
call signs in-process on a :class:`~repro.runtime.scheduler.BatchScheduler`,
fans out across a worker pool, or crosses a TCP socket.  Requests
validate in ``__post_init__`` so every transport rejects malformed input
identically (a :class:`~repro.errors.ProtocolError`, the same type a
server would answer with), and results always carry the ``transport``
that produced them so mixed-fleet telemetry can attribute latency.

The error hierarchy is the existing :mod:`repro.errors` service family;
wire error codes map back to it through
:func:`repro.service.protocol.error_type`, so ``except OverloadedError``
behaves the same against a local scheduler and a remote server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProtocolError

__all__ = ["SignRequest", "SignResult", "VerifyRequest", "VerifyResult",
           "ServiceInfo"]


def _require_bytes(value: object, name: str) -> None:
    if not isinstance(value, (bytes, bytearray, memoryview)):
        raise ProtocolError(
            f"{name!r} must be bytes, got {type(value).__name__}"
        )


def _require_str(value: object, name: str) -> None:
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{name!r} must be a non-empty string")


@dataclass(frozen=True)
class SignRequest:
    """One message to sign under a tenant's named key.

    ``deadline_ms`` is the request's queue-wait budget (how long it may
    wait for its batch to fill), not a bound on signing time — the same
    meaning it has on the wire and in the async service.
    """

    tenant: str
    message: bytes
    key: str = "default"
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        _require_str(self.tenant, "tenant")
        _require_str(self.key, "key")
        _require_bytes(self.message, "message")
        if self.deadline_ms is not None and (
                isinstance(self.deadline_ms, bool)
                or not isinstance(self.deadline_ms, (int, float))
                or self.deadline_ms < 0):
            raise ProtocolError("'deadline_ms' must be a number >= 0")


@dataclass(frozen=True)
class VerifyRequest:
    """One (message, signature) pair to check under a tenant's named key."""

    tenant: str
    message: bytes
    signature: bytes
    key: str = "default"

    def __post_init__(self) -> None:
        _require_str(self.tenant, "tenant")
        _require_str(self.key, "key")
        _require_bytes(self.message, "message")
        _require_bytes(self.signature, "signature")


@dataclass(frozen=True)
class SignResult:
    """One signed request, with the batching/latency accounting every
    tier reports: which batch the request rode in (``batch_size``), how
    long it queued (``wait_ms``), and end-to-end time (``total_ms``)."""

    signature: bytes
    tenant: str
    key: str
    params: str      # canonical parameter-set name, e.g. "SPHINCS+-128f"
    backend: str     # execution engine that signed, e.g. "pooled[4]"
    batch_size: int
    wait_ms: float
    total_ms: float
    transport: str   # which client transport produced this result


@dataclass(frozen=True)
class VerifyResult:
    """One verification verdict.  ``valid`` is the cryptographic answer;
    an invalid signature is a ``False`` here, never an exception."""

    valid: bool
    tenant: str
    key: str
    params: str
    transport: str


@dataclass(frozen=True)
class ServiceInfo:
    """What a transport serves: the ``hello`` capability advertisement,
    normalized across tiers.

    ``max_batch`` is the largest ``sign_many`` slice the transport moves
    in one hop (``None`` = unbounded, e.g. in-process); the facade
    chunks larger lists transparently.  ``parameter_sets`` covers the
    tenants the endpoint currently holds keys for.
    """

    transport: str
    server: str
    protocol_version: int
    verbs: tuple[str, ...]
    backend: str
    workers: int = 0
    max_batch: int | None = None
    parameter_sets: tuple[str, ...] = field(default_factory=tuple)

    def supports(self, verb: str) -> bool:
        """Whether the endpoint serves *verb* at the negotiated version."""
        return verb in self.verbs
