"""``repro.api`` — the unified typed client API over every execution tier.

Before this package there were four divergent ways to get a signature
(direct ``SigningBackend`` calls, ``BatchScheduler`` tickets, the
``pooled`` backend, raw JSON lines through ``ServiceClient``), each with
its own request shape and error surface — and verification was not
served at all.  ``repro.api`` is the one contract:

>>> from repro import api
>>> client = api.connect("local", deterministic=True)
>>> client.add_tenant("acme", "128f")
>>> result = client.sign("acme", b"payload")
>>> client.verify("acme", b"payload", result.signature).valid
True

The same four lines work with ``api.connect("pooled", workers=4)``
(multi-core worker pool) and ``api.connect("tcp", host=..., port=...)``
(a remote ``repro serve-async`` service speaking protocol v2); asyncio
callers use :class:`AsyncClient` directly.  Results are always
:class:`SignResult` / :class:`VerifyResult`, capability discovery is
always :meth:`~SigningClient.info`, and failures are always the typed
:mod:`repro.errors` service family — ``except OverloadedError`` means
the same thing against an in-process scheduler and a remote server.

The public surface of this package is pinned by
``tests/api_surface.json`` (regenerate deliberately with
``pytest --regen-api-surface``), so accidental breaking changes fail CI.
"""

from __future__ import annotations

from ..errors import (ConnectionLostError, KeystoreError,
                      NodeUnavailableError, OverloadedError, ProtocolError,
                      ServiceError, UnknownVerbError,
                      UnsupportedVersionError)
from .base import SigningClient
from .cluster import AsyncClusterClient, ClusterClient
from .ledger import verify_inclusion
from .local import LocalClient
from .model import (ServiceInfo, SignRequest, SignResult, VerifyRequest,
                    VerifyResult)
from .tcp import AsyncClient, TcpClient

__all__ = [
    "connect",
    "SigningClient", "LocalClient", "TcpClient", "AsyncClient",
    "ClusterClient", "AsyncClusterClient",
    "SignRequest", "SignResult", "VerifyRequest", "VerifyResult",
    "ServiceInfo", "verify_inclusion",
    "ServiceError", "KeystoreError", "OverloadedError", "ProtocolError",
    "UnknownVerbError", "UnsupportedVersionError", "ConnectionLostError",
    "NodeUnavailableError",
]

TRANSPORTS = ("local", "pooled", "tcp", "cluster")


def connect(transport: str = "local", **options) -> SigningClient:
    """Open a typed signing client over *transport*.

    * ``"local"`` — in-process :class:`LocalClient`; options forward to
      its constructor (``keystore``, ``backend``, ``deterministic``,
      ``backend_options``).
    * ``"pooled"`` — :class:`LocalClient` on the multi-core worker-pool
      backend; ``workers=N`` sizes the pool and ``inner`` names the
      backend each worker hosts (default ``vectorized``).
    * ``"tcp"`` — :class:`TcpClient` against a ``repro serve-async``
      server; options forward to :meth:`TcpClient.connect` (``host``,
      ``port``, ``min_version``, ``timeout``).
    * ``"cluster"`` — :class:`ClusterClient` against a ``repro
      serve-cluster`` router; same options as ``"tcp"``.  Results carry
      ``transport="cluster"`` and a request no live node could take
      raises :class:`~repro.errors.NodeUnavailableError`.
    """
    if transport == "local":
        return LocalClient(**options)
    if transport == "pooled":
        backend_options = dict(options.pop("backend_options", None) or {})
        pooled = dict(backend_options.get("pooled", {}))
        if "workers" in options:
            pooled["workers"] = options.pop("workers")
        if "inner" in options:
            pooled["inner"] = options.pop("inner")
        backend_options["pooled"] = pooled
        return LocalClient(backend="pooled",
                           backend_options=backend_options, **options)
    if transport == "tcp":
        return TcpClient.connect(**options)
    if transport == "cluster":
        return ClusterClient.connect(**options)
    raise ServiceError(
        f"unknown transport {transport!r}; choose one of "
        f"{', '.join(TRANSPORTS)}"
    )
