"""The cluster transport: typed clients against a cluster router.

A :class:`~repro.cluster.router.ClusterRouter` speaks the ordinary wire
protocol northbound, so these classes are the TCP transports verbatim —
same negotiation, same chunking, same typed results — relabeled so
``result.transport == "cluster"`` tells callers (and the oracle's
differential paths) which tier produced a signature.  The one behavioral
addition arrives through the error surface: a router that cannot place a
request on any live node answers with the ``unavailable`` code, which
these clients raise as :class:`~repro.errors.NodeUnavailableError`.
"""

from __future__ import annotations

from .tcp import AsyncClient, TcpClient

__all__ = ["AsyncClusterClient", "ClusterClient"]


class AsyncClusterClient(AsyncClient):
    """Typed asyncio client for a cluster router endpoint."""

    transport = "cluster"


class ClusterClient(TcpClient):
    """Synchronous typed client for a cluster router endpoint."""

    transport = "cluster"
    _async_cls = AsyncClusterClient
