"""Command-line interface: ``python -m repro <command>``.

Commands
--------
sign / verify
    Sign and verify real files/messages through the unified client API
    (``repro.api``): ``--transport local`` signs in-process,
    ``--transport pooled`` fans out across a worker pool, and
    ``--transport tcp`` drives a remote ``serve-async`` service over
    protocol v3 (or the ``--protocol 2`` JSON downgrade) — same flags,
    same output, any tier.
serve
    Drive the batch-signing runtime end-to-end: queue messages through
    the BatchScheduler, sign them on the selected backends, and report
    per-backend throughput.
serve-async
    Run the asyncio signing service: multi-tenant keystore,
    deadline-aware batching, admission control, a TCP wire protocol
    (JSON lines for v1/v2 clients, zero-copy binary frames with
    streamed sign-many after a v3 hello), and a ``stats`` verb.
serve-cluster
    Run a cluster router over N signing nodes: consistent-hash tenant
    placement, health-check-driven failover and shard re-homing, and
    the same northbound wire protocol as ``serve-async`` — either
    self-hosting N in-process nodes or fronting running ones.
loadtest
    Drive a signing service with a generated arrival trace (poisson /
    bursty / ramp) and print client latency percentiles plus the
    server's telemetry report.  Self-hosts a server unless ``--connect``
    names one.  ``--verify-fraction`` turns part of the trace into
    verify operations for verification-dominant workloads.
audit
    Replay a transparency log from its on-disk segments: re-verify
    every entry's batch signature, recompute every tree head, check the
    checkpoint chain and signatures (optionally byte-comparing against
    the reference scheme), and emit a JSON digest report.  Exit 0 when
    the log survives; exit 1 naming the first bad entry index.
conformance
    Run the conformance subsystem: the cross-backend differential oracle
    over an adversarial corpus (optionally with an injected hash fault),
    and the pinned KAT vector workflow (--check-kats / --regen-kats).
tune
    Run the Tree Tuning search for a parameter set and device.
model
    Model baseline vs HERO-Sign throughput for a device.
report
    Regenerate the paper-vs-model tables (see examples/reproduce_paper.py).
"""

from __future__ import annotations

import argparse
import sys


def _parse_hostport(spec: str) -> tuple[str, int] | None:
    """``HOST:PORT`` -> (host, port); None when malformed."""
    host, sep, port = spec.rpartition(":")
    host = host.strip("[]") or "127.0.0.1"  # [::1]:7744 -> ::1
    if not sep or not port.isdigit():
        return None
    return host, int(port)


def _make_api_client(args: argparse.Namespace, command: str):
    """Open the repro.api client a sign/verify subcommand drives.

    Returns ``(client, exit_code)``; a non-None exit code means the
    arguments were unusable and the caller should return it.
    """
    from . import api

    if args.transport in ("tcp", "cluster"):
        ignored = [flag for flag, is_set in (
            ("--deterministic", args.deterministic),
            ("--keystore", bool(args.keystore)),
            ("--params", args.params != "128f"),
        ) if is_set]
        if ignored:
            print(f"{command}: note — ignoring {', '.join(ignored)} "
                  f"with --transport {args.transport}: keys, parameter "
                  "set, and signing mode belong to the server's tenant",
                  file=sys.stderr)
        target = _parse_hostport(args.connect or "127.0.0.1:7744")
        if target is None:
            print(f"{command}: --connect wants HOST:PORT, got "
                  f"{args.connect!r}", file=sys.stderr)
            return None, 2
        options = {}
        if getattr(args, "protocol", None):
            options["version"] = args.protocol
        try:
            return api.connect(args.transport, host=target[0],
                               port=target[1], **options), None
        except (ConnectionError, OSError, api.ServiceError) as exc:
            print(f"{command}: cannot reach {target[0]}:{target[1]} — "
                  f"{exc}", file=sys.stderr)
            return None, 2
    from .service import Keystore

    try:
        keystore = Keystore(root=args.keystore) if args.keystore else None
        options = {"keystore": keystore,
                   "deterministic": args.deterministic}
        if args.transport == "pooled":
            options["workers"] = args.workers
        client = api.connect(args.transport, **options)
        # Local tiers own their keys: ensure the tenant exists
        # (deterministic runs derive the key from "<tenant>/<key>",
        # matching the service CLI).
        client.add_tenant(args.tenant, args.params, key=args.key)
    except api.ServiceError as exc:
        # e.g. a --keystore tenant pinned to a different --params, or a
        # quarantined corrupt tenant file.
        print(f"{command}: {exc}", file=sys.stderr)
        return None, 2
    return client, None


def _read_message(args: argparse.Namespace) -> bytes:
    if args.file:
        with open(args.file, "rb") as handle:
            return handle.read()
    return args.message.encode()


def _cmd_sign(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client, exit_code = _make_api_client(args, "sign")
    if client is None:
        return exit_code
    try:
        with client:
            message = _read_message(args)
            result = client.sign(args.tenant, message, key=args.key)
            verdict = client.verify(args.tenant, message, result.signature,
                                    key=args.key)
            print(f"parameter set : {result.params}")
            print(f"transport     : {result.transport} "
                  f"(backend {result.backend})")
            print(f"tenant / key  : {result.tenant} / {result.key}")
            print(f"message bytes : {len(message)}")
            print(f"signature     : {len(result.signature)} bytes")
            if hasattr(client, "keystore"):
                # Local tiers: without this, an ephemeral key's signature
                # could never be verified out-of-band.
                keys, _ = client.keystore.resolve(args.tenant, args.key)
                print(f"public key    : {keys.public.hex()}")
            print(f"self-verify   : {verdict.valid}")
            if args.out:
                with open(args.out, "wb") as handle:
                    handle.write(result.signature)
                print(f"wrote {args.out}")
    except (ServiceError, OSError) as exc:
        print(f"sign: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client, exit_code = _make_api_client(args, "verify")
    if client is None:
        return exit_code
    try:
        with client:
            message = _read_message(args)
            with open(args.sig, "rb") as handle:
                signature = handle.read()
            verdict = client.verify(args.tenant, message, signature,
                                    key=args.key)
            print(f"parameter set : {verdict.params}")
            print(f"transport     : {verdict.transport}")
            print(f"tenant / key  : {verdict.tenant} / {verdict.key}")
            print(f"message bytes : {len(message)}")
            print(f"signature     : {len(signature)} bytes")
            print(f"valid         : {verdict.valid}")
    except (ServiceError, OSError) as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2
    return 0 if verdict.valid else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .runtime import BatchScheduler

    if args.messages < 1:
        print("serve: --messages must be >= 1", file=sys.stderr)
        return 2
    if args.batch_size < 0:
        print("serve: --batch-size must be >= 0", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("serve: --workers must be >= 0", file=sys.stderr)
        return 2
    backends = [name.strip() for name in args.backends.split(",")]
    backend_options: dict[str, dict] = {}
    pool = None
    if args.workers > 0:
        # Multi-core tier: every worker hosts the named backend.  One
        # pool config per run, so exactly one inner backend is allowed —
        # dropping the rest silently would fake the comparison the user
        # asked for.
        if len(backends) != 1:
            print("serve: --workers takes exactly one --backends entry "
                  f"(the pool's inner backend), got {args.backends!r}",
                  file=sys.stderr)
            return 2
        if backends[0] == "pooled":
            print("serve: --workers already routes through the pooled "
                  "backend; name the inner backend (e.g. vectorized), "
                  "not 'pooled'", file=sys.stderr)
            return 2
        # One shared pool for every parameter set: workers host one warm
        # backend per set, so per-set PooledBackend instances must share
        # processes rather than each spawning their own.
        from .runtime import WorkerPool

        pool = WorkerPool(workers=args.workers, backend=backends[0],
                          deterministic=args.deterministic,
                          cache_budget_mb=args.cache_budget_mb)
        backend_options["pooled"] = {"pool": pool}
        backends = ["pooled"]
    elif args.cache_budget_mb is not None:
        # In-process tier: thread the budget into every cache-aware
        # backend the run names (modeled backends ignore the knob).
        for backend in backends:
            if backend in ("scalar", "vectorized"):
                backend_options.setdefault(backend, {})[
                    "cache_budget_mb"] = args.cache_budget_mb
    scheduler = BatchScheduler(
        target_batch_size=args.batch_size or args.messages,
        deterministic=args.deterministic,
        verify=args.verify,
        backend_options=backend_options,
    )
    try:
        for params in args.params.split(","):
            for backend in backends:
                scheduler.run(
                    (f"{params}/{backend}/msg{i}".encode()
                     for i in range(args.messages)),
                    params=params.strip(), backend=backend,
                )
    finally:
        if pool is not None:
            pool.close()
    print(scheduler.report(
        title=f"Batch signing runtime, {args.messages} messages per "
              f"(set, backend)"
    ))
    return 0


def _parse_tenants(spec: str) -> list[tuple[str, str]]:
    """Parse ``name:params,name:params`` (params optional, default 128f)."""
    tenants = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, params = item.partition(":")
        tenants.append((name.strip(), params.strip() or "128f"))
    return tenants


def _build_keystore(args: argparse.Namespace):
    """The tenant registry a serve-async/serve-cluster run provisions."""
    from .service import Keystore, derive_seed
    from .params import get_params

    keystore = Keystore(root=args.keystore or None)
    for name, params in _parse_tenants(args.tenants):
        keystore.add_tenant(name, params, exist_ok=True)
        if "default" not in keystore.key_names(name):
            seed = (derive_seed(f"{name}/default",
                                get_params(params).n)
                    if args.deterministic else None)
            keystore.generate_key(name, "default", seed=seed)
    return keystore


def _build_service(args: argparse.Namespace, keystore=None):
    """Construct the SigningService a serve-async/loadtest run fronts."""
    from .service import SigningService

    if keystore is None:
        keystore = _build_keystore(args)
    tracer = None
    if getattr(args, "trace_out", None):
        from .obs import Tracer

        tracer = Tracer(out_path=args.trace_out)
    if getattr(args, "log_json", None):
        from .obs import configure_logging

        configure_logging(args.log_json)
    return SigningService(
        keystore,
        backend=args.backend,
        target_batch_size=args.batch_size,
        max_wait_s=args.max_wait_ms / 1000.0,
        max_pending=args.max_pending,
        deterministic=args.deterministic,
        workers=args.workers,
        cache_budget_mb=args.cache_budget_mb,
        tracer=tracer,
    )


def _start_metrics(args: argparse.Namespace, service):
    """Start the Prometheus endpoint when --metrics-port was given."""
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from .obs import MetricsServer

    endpoint = MetricsServer(service.metrics_registry, port=port).start()
    print(f"metrics endpoint on http://127.0.0.1:{endpoint.port}/metrics")
    return endpoint


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tenants", default="demo:128f",
                        help="comma-separated name:params tenant specs")
    parser.add_argument("--keystore", default=None,
                        help="keystore directory (default: in-memory)")
    parser.add_argument("--backend", default="vectorized")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="dispatch a queue at this fill level")
    parser.add_argument("--max-wait-ms", type=float, default=100.0,
                        help="latency budget before a partial batch ships")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="shed requests beyond this queue depth")
    parser.add_argument("--workers", type=int, default=0,
                        help="size of the multi-process worker pool "
                             "(0 = sign in-process)")
    parser.add_argument("--deterministic", action="store_true",
                        help="deterministic backends and tenant key seeds")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        help="per-key hypertree layer-cache memory budget "
                             "in MiB (default: model default, 32)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export request spans as JSONL to PATH "
                             "(enables end-to-end tracing)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus /metrics on PORT "
                             "(0 picks a free port)")
    parser.add_argument("--log-json", default=None, metavar="DEST",
                        help="structured JSON logs to DEST "
                             "('-' for stderr, else a file path)")


def _cmd_serve_async(args: argparse.Namespace) -> int:
    import asyncio

    from .service import SigningServer

    async def run() -> None:
        service = _build_service(args)
        server = SigningServer(service, host=args.host, port=args.port)
        await server.start()
        metrics = _start_metrics(args, service)
        config = service.stats()["config"]
        print(f"signing service listening on {args.host}:{server.port}")
        print(f"  tenants       : {config['tenants']}")
        print(f"  backend       : {config['backend']}"
              + (f" on a {config['workers']}-process worker pool"
                 if config["workers"] else ""))
        print(f"  batch size    : {config['target_batch_size']}, "
              f"max wait {config['max_wait_ms']} ms, "
              f"shed above {config['max_pending']} queued")
        if config.get("cache_budget_mb") is not None:
            print(f"  layer cache   : {config['cache_budget_mb']} MiB/key "
                  "budget, tenant keys prewarmed")
        if args.trace_out:
            print(f"  tracing       : spans -> {args.trace_out}")
        print("  protocol      : v3 binary frames with streamed "
              "sign-many (hello negotiation; verbs: sign, sign-many, "
              "verify, keys, stats, metrics, ping); v1/v2 JSON clients "
              "served unchanged; Ctrl-C to stop")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
            if metrics is not None:
                metrics.close()
            if service.tracer is not None:
                service.tracer.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import ClusterRouter, LocalCluster, RouterService
    from .errors import ServiceError

    spec = args.nodes.strip()

    async def run() -> int:
        cluster = None
        metrics = None
        if spec.isdigit():
            # Self-hosted fleet: N in-process nodes sharing one keystore
            # (identical keys on every node — a re-homed tenant signs
            # and verifies the same either way).
            count = int(spec)
            if count < 1:
                print("serve-cluster: --nodes must be >= 1",
                      file=sys.stderr)
                return 2
            keystore = _build_keystore(args)
            cluster = LocalCluster(
                [lambda: _build_service(args, keystore=keystore)] * count,
                host=args.host, port=args.port,
                max_retries=args.max_retries,
                health_interval_s=args.health_interval_ms / 1000.0)
            await cluster.start()
            router = cluster.router
            print(f"cluster router listening on {args.host}:{cluster.port}")
            print(f"  nodes         : {count} in-process, ports "
                  + ", ".join(str(s.port) for s in cluster.servers))
        else:
            # Front an existing fleet: --nodes host:port,host:port,...
            addresses = []
            for item in spec.split(","):
                target = _parse_hostport(item.strip())
                if target is None:
                    print("serve-cluster: --nodes wants a node count or "
                          f"HOST:PORT list, got {item.strip()!r}",
                          file=sys.stderr)
                    return 2
                addresses.append(target)
            service = RouterService(
                addresses, _build_keystore(args),
                max_retries=args.max_retries,
                health_interval_s=args.health_interval_ms / 1000.0)
            router = ClusterRouter(service, host=args.host, port=args.port)
            await router.start()
            print(f"cluster router listening on {args.host}:{router.port}")
            print("  nodes         : "
                  + ", ".join(f"{h}:{p}" for h, p in addresses))
        assert router is not None
        metrics = _start_metrics(args, router.service)
        stats = router.service.stats()["cluster"]
        print(f"  live nodes    : {stats['live_nodes']}"
              f"/{len(stats['nodes'])}")
        print(f"  placement     : consistent hashing on tenant name, "
              f"{args.max_retries} failover retries, health check every "
              f"{args.health_interval_ms:g} ms")
        print("  protocol      : v1/v2/v3 northbound (same verbs as "
              "serve-async, plus the 'unavailable' error code); "
              "Ctrl-C to stop")
        try:
            await router.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if cluster is not None:
                await cluster.stop()
            else:
                await router.stop()
            if metrics is not None:
                metrics.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0
    except ServiceError as exc:
        print(f"serve-cluster: {exc}", file=sys.stderr)
        return 2


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio

    from .api import AsyncClient
    from .service import (LoadGenerator, SigningServer, make_trace,
                          render_snapshot)

    host = port = None
    if args.connect:
        target = _parse_hostport(args.connect)
        if target is None:
            print(f"loadtest: --connect wants HOST:PORT, got "
                  f"{args.connect!r}", file=sys.stderr)
            return 2
        host, port = target
    if args.messages < 1:
        print("loadtest: --messages must be >= 1", file=sys.stderr)
        return 2
    tenants = _parse_tenants(args.tenants)
    if not tenants:
        print("loadtest: --tenants must name at least one tenant",
              file=sys.stderr)
        return 2
    tenant = tenants[0][0]

    async def run() -> int:
        server = None
        metrics = None
        version = args.protocol or 3
        if args.connect:
            client = await AsyncClient.connect(host, port, version=version)
        else:
            server = SigningServer(_build_service(args), port=0)
            await server.start()
            metrics = _start_metrics(args, server.service)
            print(f"self-hosted signing service on 127.0.0.1:{server.port}")
            client = await AsyncClient.connect(port=server.port,
                                               version=version)
        print(f"wire protocol : v{client.info().protocol_version}"
              + (" (binary frames, streamed sign-many)"
                 if client.info().protocol_version >= 3
                 else " (JSON lines)"))

        async def signer(message: bytes):
            return await client.sign(tenant, message,
                                     deadline_ms=args.deadline_ms)

        verifier = None
        if args.verify_fraction > 0.0:
            # One seeded (message, signature) pair backs every verify op:
            # SPHINCS+ verification cost does not depend on which valid
            # pair is checked, so the load profile is what matters.
            seed_message = b"loadgen verify seed"
            seeded = await client.sign(tenant, seed_message)

            async def verifier(message: bytes):
                return await client.verify(tenant, seed_message,
                                           seeded.signature)

        try:
            offsets = make_trace(args.trace, args.messages, args.rate,
                                 seed=args.seed)
            generator = LoadGenerator(signer, time_scale=args.time_scale,
                                      verifier=verifier,
                                      verify_fraction=args.verify_fraction,
                                      seed=args.seed)
            print(f"replaying {args.messages} requests, trace "
                  f"{args.trace!r} at ~{args.rate}/s "
                  f"(tenant {tenant!r}"
                  + (f", {args.verify_fraction:.0%} verifies"
                     if args.verify_fraction > 0.0 else "")
                  + ")...")
            report = await generator.run(offsets, trace=args.trace)
            stats = await client.stats()
        finally:
            await client.close()
            if server is not None:
                await server.stop()
                if metrics is not None:
                    metrics.close()
                tracer = server.service.tracer
                if tracer is not None:
                    tracer.close()
                    print(f"\n{len(tracer.spans())} spans across "
                          f"{len(tracer.traces())} traces -> "
                          f"{args.trace_out} "
                          "(render with: repro trace --input "
                          f"{args.trace_out})")
        print()
        print(report.table())
        print()
        print(render_snapshot(stats, title="Server telemetry"))
        return 0 if report.failed == 0 else 1

    return asyncio.run(run())


def _cmd_audit(args: argparse.Namespace) -> int:
    """Replay a transparency log and verify every tree head.

    Exit 0 when the whole log re-verifies; exit 1 (naming the first bad
    entry index on stderr) when any entry signature, tree head, chain
    link, or checkpoint signature fails the replay.
    """
    import json

    from .errors import LedgerError
    from .ledger import run_audit
    from .service import Keystore

    try:
        report = run_audit(args.root, Keystore(root=args.keystore),
                           tenant=args.tenant, key=args.key,
                           deterministic=args.deterministic)
    except LedgerError as exc:
        print(f"audit: {exc}", file=sys.stderr)
        return 2
    rendered = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"digest report -> {args.out}")
    else:
        print(rendered)
    if report["ok"]:
        return 0
    where = report["first_bad_index"]
    print("audit: log failed verification"
          + (f" (first bad entry index: {where})" if where is not None
             else "")
          + f" — {len(report['problems'])} problem(s)", file=sys.stderr)
    return 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from .errors import ConformanceError, ParameterError
    from .testing import (DifferentialOracle, KAT_SETS, check_kat,
                          generate_kat, parse_fault)

    vectors_dir = Path(args.vectors_dir) if args.vectors_dir else None
    params_list = ([p.strip() for p in args.params.split(",") if p.strip()]
                   if args.params else [])

    # Exit-code contract: 0 clean, 1 conformance failure (divergence /
    # KAT drift), 2 misconfiguration (unknown set, bad fault spec,
    # backend without a fault hook, fault armed but never fired).
    try:
        if args.regen_kats:
            for params in (params_list or list(KAT_SETS)):
                path = generate_kat(params, vectors_dir)
                print(f"wrote {path}")
            return 0

        if args.check_kats:
            failed = False
            for params in (params_list or list(KAT_SETS)):
                problems = check_kat(params, vectors_dir)
                if problems:
                    failed = True
                    for problem in problems:
                        print(f"KAT DRIFT: {problem}")
                else:
                    print(f"kat {params}: ok")
            return 1 if failed else 0

        fault = parse_fault(args.inject_fault) if args.inject_fault else None
    except (ConformanceError, ParameterError) as exc:
        print(f"conformance: {exc}", file=sys.stderr)
        return 2

    smoke = args.smoke or bool(os.environ.get("REPRO_SMOKE"))
    backends = ([b.strip() for b in args.backends.split(",") if b.strip()]
                if args.backends else None)
    exit_code = 0
    for params in (params_list or ["128f"]):
        try:
            oracle = DifferentialOracle(
                params, backends=backends, seed=args.seed, smoke=smoke,
                include_service=not args.no_service, fault=fault,
                fault_target=args.fault_target)
            report = oracle.run()
        except (ConformanceError, ParameterError) as exc:
            print(f"conformance: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        if fault is not None and not report.fault_fired:
            print(f"conformance: fault {fault.spec} armed but never fired "
                  f"(only {fault.calls_seen} {fault.target} calls)",
                  file=sys.stderr)
            exit_code = 2
        if not report.passed:
            divergence = report.first_divergence()
            if divergence is not None:
                print(f"conformance: FAILED — first divergence at "
                      f"{divergence.stage} ({divergence.path}, "
                      f"case {divergence.case})", file=sys.stderr)
            else:
                print("conformance: FAILED — see report above",
                      file=sys.stderr)
            exit_code = max(exit_code, 1)
        else:
            print(f"conformance: {params} ok — all paths byte-identical "
                  "and verified")
    return exit_code


def _cmd_tune(args: argparse.Namespace) -> int:
    from .core.fusion import plan_fors
    from .gpusim.device import get_device
    from .params import get_params

    device = get_device(args.device)
    params = get_params(args.params)
    plan = plan_fors(
        params, device.shared_mem_per_block_static,
        hard_limit=device.shared_mem_per_block_optin,
    )
    print(f"{params.name} on {device.name} ({device.architecture})")
    print(f"  threads/block : {plan.threads_per_block}")
    print(f"  trees per set : {plan.n_tree}")
    print(f"  fusion F      : {plan.fusion_f}")
    print(f"  relax-FORS    : {plan.relax}")
    print(f"  shared memory : {plan.smem_per_block} B (padded)")
    print(f"  barriers      : {plan.sync_points}")
    if plan.tuning:
        print("  near-optimal candidates:")
        for cand in plan.tuning.top(5):
            print(f"    (T_set={cand.t_set}, F={cand.f}) "
                  f"sync={cand.sync_points} U_T={cand.u_t:.3f} "
                  f"U_S={cand.u_s:.3f}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .core.batch import MODES, run_batch
    from .gpusim.device import get_device
    from .params import get_params

    device = get_device(args.device)
    params = get_params(args.params)
    print(f"{params.name} on modeled {device.name}, "
          f"{args.messages} messages:")
    for mode in MODES:
        result = run_batch(params, device, mode, messages=args.messages,
                           batches=args.batches)
        print(f"  {mode:15s} {result.kops:8.2f} KOPS   "
              f"launch {result.launch_latency_us:7.1f} us")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import experiments

    print(experiments.run_all(args.device))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import load_spans, render_critical_path

    # Exit codes: 0 report rendered, 2 unusable input (missing /
    # unreadable file, or a file with no parseable spans) — one line on
    # stderr either way, never a traceback.
    try:
        spans = load_spans(args.input)
    except OSError as exc:
        print(f"trace: cannot read {args.input!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"trace: no spans in {args.input!r}", file=sys.stderr)
        return 2
    print(render_critical_path(spans, top=args.top))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_transport_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--transport", default="local",
                       choices=("local", "pooled", "tcp", "cluster"),
                       help="execution tier behind the repro.api facade")
        p.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="target service for --transport tcp/cluster "
                            "(default 127.0.0.1:7744)")
        p.add_argument("--protocol", type=int, default=None,
                       choices=(2, 3),
                       help="wire protocol to offer for --transport "
                            "tcp/cluster (default: v3 binary frames, with "
                            "automatic downgrade to v2 JSON lines)")
        p.add_argument("--workers", type=int, default=2,
                       help="worker-pool size for --transport pooled")
        p.add_argument("--tenant", default="cli",
                       help="tenant name (local tiers auto-provision it)")
        p.add_argument("--key", default="default", help="named tenant key")
        p.add_argument("--keystore", default=None,
                       help="keystore directory for local tiers "
                            "(default: ephemeral in-memory keys)")
        p.add_argument("--params", default="128f")
        p.add_argument("--message", default="hello post-quantum world")
        p.add_argument("--file", default=None)
        p.add_argument("--deterministic", action="store_true")

    p_sign = sub.add_parser(
        "sign", help="sign a message/file through the unified client API")
    _add_transport_args(p_sign)
    p_sign.add_argument("--out", default=None)
    p_sign.set_defaults(func=_cmd_sign)

    p_verify = sub.add_parser(
        "verify",
        help="verify a signature through the unified client API")
    _add_transport_args(p_verify)
    p_verify.add_argument("--sig", required=True,
                          help="signature file to check")
    p_verify.set_defaults(func=_cmd_verify)

    p_serve = sub.add_parser(
        "serve", help="run the batch-signing runtime end-to-end")
    p_serve.add_argument("--params", default="128f",
                         help="comma-separated parameter sets")
    p_serve.add_argument("--backends", default="vectorized",
                         help="comma-separated backend names")
    p_serve.add_argument("--messages", type=int, default=4,
                         help="messages per (set, backend)")
    p_serve.add_argument("--batch-size", type=int, default=0,
                         help="scheduler target batch size (default: all)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="run batches on a multi-process worker pool "
                              "of this size (0 = in-process)")
    p_serve.add_argument("--deterministic", action="store_true")
    p_serve.add_argument("--cache-budget-mb", type=float, default=None,
                         help="per-key hypertree layer-cache memory budget "
                              "in MiB (default: model default, 32)")
    p_serve.add_argument("--verify", action="store_true",
                         help="verify every batch after signing")
    p_serve.set_defaults(func=_cmd_serve)

    p_serve_async = sub.add_parser(
        "serve-async",
        help="run the asyncio signing service over TCP")
    p_serve_async.add_argument("--host", default="127.0.0.1")
    p_serve_async.add_argument("--port", type=int, default=7744,
                               help="TCP port (0 picks a free one)")
    _add_service_args(p_serve_async)
    p_serve_async.set_defaults(func=_cmd_serve_async)

    p_serve_cluster = sub.add_parser(
        "serve-cluster",
        help="run a cluster router over N signing nodes")
    p_serve_cluster.add_argument("--host", default="127.0.0.1")
    p_serve_cluster.add_argument("--port", type=int, default=7744,
                                 help="router TCP port (0 picks a free one)")
    p_serve_cluster.add_argument(
        "--nodes", default="2", metavar="N|HOST:PORT,...",
        help="node count to self-host in-process (default 2), or a "
             "comma-separated HOST:PORT list of running serve-async "
             "nodes to front")
    p_serve_cluster.add_argument("--max-retries", type=int, default=2,
                                 help="failover attempts after the "
                                      "primary node (default 2)")
    p_serve_cluster.add_argument("--health-interval-ms", type=float,
                                 default=500.0,
                                 help="node liveness probe cadence")
    _add_service_args(p_serve_cluster)
    p_serve_cluster.set_defaults(func=_cmd_serve_cluster)

    p_loadtest = sub.add_parser(
        "loadtest",
        help="drive a signing service with a generated arrival trace")
    p_loadtest.add_argument("--connect", default=None, metavar="HOST:PORT",
                            help="target service (default: self-host one)")
    p_loadtest.add_argument("--trace", default="poisson",
                            choices=("poisson", "bursty", "ramp"))
    p_loadtest.add_argument("--messages", type=int, default=32)
    p_loadtest.add_argument("--rate", type=float, default=20.0,
                            help="mean arrival rate, requests/second")
    p_loadtest.add_argument("--deadline-ms", type=float, default=None,
                            help="per-request queue-wait budget")
    p_loadtest.add_argument("--seed", type=int, default=0)
    p_loadtest.add_argument("--time-scale", type=float, default=1.0,
                            help="multiply trace offsets (0.5 = 2x faster)")
    p_loadtest.add_argument("--protocol", type=int, default=None,
                            choices=(2, 3),
                            help="wire protocol to offer (default: v3 "
                                 "binary frames, auto-downgrade to v2)")
    p_loadtest.add_argument("--verify-fraction", type=float, default=0.0,
                            metavar="F",
                            help="turn this fraction of requests into "
                                 "verify operations (0.9 models "
                                 "verification-dominant traffic)")
    _add_service_args(p_loadtest)
    p_loadtest.set_defaults(func=_cmd_loadtest)

    p_audit = sub.add_parser(
        "audit",
        help="replay a transparency log, re-verify every tree head")
    p_audit.add_argument("--root", required=True,
                        help="ledger directory (segments/ + checkpoints/)")
    p_audit.add_argument("--keystore", required=True,
                        help="keystore directory holding the log "
                             "tenant's keys")
    p_audit.add_argument("--tenant", default="ledger",
                        help="log signing tenant (default: ledger)")
    p_audit.add_argument("--key", default="default")
    p_audit.add_argument("--deterministic", action="store_true",
                        help="additionally re-sign each checkpoint body "
                             "on the reference scheme and byte-compare "
                             "(the differential-oracle cross-check)")
    p_audit.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON digest report to PATH "
                             "(default: stdout)")
    p_audit.set_defaults(func=_cmd_audit)

    p_conf = sub.add_parser(
        "conformance",
        help="differential oracle, KAT pinning, and fault injection")
    p_conf.add_argument("--params", default=None,
                        help="comma-separated parameter sets (oracle "
                             "default: 128f; KAT commands default to all "
                             "four pinned sets)")
    p_conf.add_argument("--backends", default=None,
                        help="comma-separated backend names "
                             "(default: every registered backend)")
    p_conf.add_argument("--smoke", action="store_true",
                        help="small corpus (also implied by REPRO_SMOKE=1)")
    p_conf.add_argument("--seed", type=int, default=0,
                        help="corpus generation seed")
    p_conf.add_argument("--no-service", action="store_true",
                        help="skip the async SigningService pass")
    p_conf.add_argument("--inject-fault", default=None, metavar="SPEC",
                        help="install a deterministic fault, e.g. "
                             "'thash:bitflip' or 'thash:bitflip:120:5'; "
                             "the run must then fail naming the stage")
    p_conf.add_argument("--fault-target", default="scalar",
                        help="backend the fault is installed on")
    p_conf.add_argument("--check-kats", action="store_true",
                        help="verify the pinned KAT vectors, report drift")
    p_conf.add_argument("--regen-kats", action="store_true",
                        help="rewrite the pinned KAT vectors")
    p_conf.add_argument("--vectors-dir", default=None,
                        help="KAT vector directory (default: tests/vectors)")
    p_conf.set_defaults(func=_cmd_conformance)

    p_tune = sub.add_parser("tune", help="run the Tree Tuning search")
    p_tune.add_argument("--params", default="128f")
    p_tune.add_argument("--device", default="RTX 4090")
    p_tune.set_defaults(func=_cmd_tune)

    p_model = sub.add_parser("model", help="model throughput on a device")
    p_model.add_argument("--params", default="128f")
    p_model.add_argument("--device", default="RTX 4090")
    p_model.add_argument("--messages", type=int, default=1024)
    p_model.add_argument("--batches", type=int, default=8)
    p_model.set_defaults(func=_cmd_model)

    p_trace = sub.add_parser(
        "trace",
        help="critical-path breakdown of a --trace-out span export")
    p_trace.add_argument("--input", required=True, metavar="PATH",
                         help="JSONL span export written by --trace-out")
    p_trace.add_argument("--top", type=int, default=10,
                         help="show the N slowest requests (default 10)")
    p_trace.set_defaults(func=_cmd_trace)

    p_report = sub.add_parser("report", help="paper-vs-model report")
    p_report.add_argument("--device", default="RTX 4090")
    p_report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
