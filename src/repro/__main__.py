"""Command-line interface: ``python -m repro <command>``.

Commands
--------
sign / verify
    Exercise the functional SPHINCS+ layer on real files.
serve
    Drive the batch-signing runtime end-to-end: queue messages through
    the BatchScheduler, sign them on the selected backends, and report
    per-backend throughput.
tune
    Run the Tree Tuning search for a parameter set and device.
model
    Model baseline vs HERO-Sign throughput for a device.
report
    Regenerate the paper-vs-model tables (see examples/reproduce_paper.py).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_sign(args: argparse.Namespace) -> int:
    from .sphincs.signer import Sphincs

    scheme = Sphincs(args.params, deterministic=args.deterministic)
    seed = bytes(3 * scheme.params.n) if args.deterministic else None
    keys = scheme.keygen(seed=seed)
    message = open(args.file, "rb").read() if args.file else args.message.encode()
    signature = scheme.sign(message, keys)
    print(f"parameter set : {scheme.params.name}")
    print(f"message bytes : {len(message)}")
    print(f"signature     : {len(signature)} bytes")
    print(f"public key    : {keys.public.hex()}")
    print(f"self-verify   : {scheme.verify(message, signature, keys.public)}")
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(signature)
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .runtime import BatchScheduler

    if args.messages < 1:
        print("serve: --messages must be >= 1", file=sys.stderr)
        return 2
    if args.batch_size < 0:
        print("serve: --batch-size must be >= 0", file=sys.stderr)
        return 2
    scheduler = BatchScheduler(
        target_batch_size=args.batch_size or args.messages,
        deterministic=args.deterministic,
        verify=args.verify,
    )
    for params in args.params.split(","):
        for backend in args.backends.split(","):
            scheduler.run(
                (f"{params}/{backend}/msg{i}".encode()
                 for i in range(args.messages)),
                params=params.strip(), backend=backend.strip(),
            )
    print(scheduler.report(
        title=f"Batch signing runtime, {args.messages} messages per "
              f"(set, backend)"
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .core.fusion import plan_fors
    from .gpusim.device import get_device
    from .params import get_params

    device = get_device(args.device)
    params = get_params(args.params)
    plan = plan_fors(
        params, device.shared_mem_per_block_static,
        hard_limit=device.shared_mem_per_block_optin,
    )
    print(f"{params.name} on {device.name} ({device.architecture})")
    print(f"  threads/block : {plan.threads_per_block}")
    print(f"  trees per set : {plan.n_tree}")
    print(f"  fusion F      : {plan.fusion_f}")
    print(f"  relax-FORS    : {plan.relax}")
    print(f"  shared memory : {plan.smem_per_block} B (padded)")
    print(f"  barriers      : {plan.sync_points}")
    if plan.tuning:
        print("  near-optimal candidates:")
        for cand in plan.tuning.top(5):
            print(f"    (T_set={cand.t_set}, F={cand.f}) "
                  f"sync={cand.sync_points} U_T={cand.u_t:.3f} "
                  f"U_S={cand.u_s:.3f}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .core.batch import MODES, run_batch
    from .gpusim.device import get_device
    from .params import get_params

    device = get_device(args.device)
    params = get_params(args.params)
    print(f"{params.name} on modeled {device.name}, "
          f"{args.messages} messages:")
    for mode in MODES:
        result = run_batch(params, device, mode, messages=args.messages,
                           batches=args.batches)
        print(f"  {mode:15s} {result.kops:8.2f} KOPS   "
              f"launch {result.launch_latency_us:7.1f} us")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import experiments

    print(experiments.run_all(args.device))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sign = sub.add_parser("sign", help="sign a message/file (functional layer)")
    p_sign.add_argument("--params", default="128f")
    p_sign.add_argument("--message", default="hello post-quantum world")
    p_sign.add_argument("--file", default=None)
    p_sign.add_argument("--out", default=None)
    p_sign.add_argument("--deterministic", action="store_true")
    p_sign.set_defaults(func=_cmd_sign)

    p_serve = sub.add_parser(
        "serve", help="run the batch-signing runtime end-to-end")
    p_serve.add_argument("--params", default="128f",
                         help="comma-separated parameter sets")
    p_serve.add_argument("--backends", default="vectorized",
                         help="comma-separated backend names")
    p_serve.add_argument("--messages", type=int, default=4,
                         help="messages per (set, backend)")
    p_serve.add_argument("--batch-size", type=int, default=0,
                         help="scheduler target batch size (default: all)")
    p_serve.add_argument("--deterministic", action="store_true")
    p_serve.add_argument("--verify", action="store_true",
                         help="verify every batch after signing")
    p_serve.set_defaults(func=_cmd_serve)

    p_tune = sub.add_parser("tune", help="run the Tree Tuning search")
    p_tune.add_argument("--params", default="128f")
    p_tune.add_argument("--device", default="RTX 4090")
    p_tune.set_defaults(func=_cmd_tune)

    p_model = sub.add_parser("model", help="model throughput on a device")
    p_model.add_argument("--params", default="128f")
    p_model.add_argument("--device", default="RTX 4090")
    p_model.add_argument("--messages", type=int, default=1024)
    p_model.add_argument("--batches", type=int, default=8)
    p_model.set_defaults(func=_cmd_model)

    p_report = sub.add_parser("report", help="paper-vs-model report")
    p_report.add_argument("--device", default="RTX 4090")
    p_report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
