"""SPHINCS+ hash addresses (ADRS).

An address ties every hash call to its unique position in the SPHINCS+
structure, which is what makes the scheme's security proof multi-target
resistant.  The full ADRS is 32 bytes; the SHA-256 instantiation hashes a
*compressed* 22-byte form (layer as 1 byte, tree as 8 bytes, type as 1
byte, then the three 4-byte words).

The class is deliberately mutable with a :meth:`copy` helper because the
reference signing flow mutates one address object as it walks trees, and we
mirror that flow.
"""

from __future__ import annotations

import enum
import functools
import struct

from ..errors import AddressError

__all__ = ["AddressType", "Address", "AddressTemplate", "packed_u32"]


class AddressType(enum.IntEnum):
    """The seven ADRS type words of the SPHINCS+ specification."""

    WOTS_HASH = 0
    WOTS_PK = 1
    TREE = 2
    FORS_TREE = 3
    FORS_ROOTS = 4
    WOTS_PRF = 5
    FORS_PRF = 6


_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


@functools.lru_cache(maxsize=65536)
def packed_u32(value: int) -> bytes:
    """Big-endian 4-byte encoding of *value*, memoized.

    The hot signing loops re-encode the same small word values (chain
    indices, hash positions, tree heights, leaf indices) millions of times;
    caching the packed bytes removes the per-call ``struct.pack`` cost.
    """
    return struct.pack(">I", value)


class AddressTemplate:
    """Precomputed compressed-ADRS byte fragments for hot hash loops.

    A template freezes the slowly-varying part of a compressed address —
    layer, tree, type and optionally the leading words — so an inner loop
    can form the full 22-byte compressed ADRS by appending cached 4-byte
    words to :attr:`prefix` instead of re-packing all six fields per hash
    call (see ``repro.runtime.fastops`` for the consuming loops).
    """

    __slots__ = ("prefix",)

    def __init__(self, layer: int, tree: int, type_: AddressType,
                 *words: int):
        if not 0 <= layer <= 0xFF:
            raise AddressError(f"layer {layer} out of range for compressed ADRS")
        if not 0 <= tree <= _MASK64:
            raise AddressError(f"tree index {tree} exceeds 64 bits")
        if len(words) > 3:
            raise AddressError("an ADRS has only three trailing words")
        self.prefix = (
            bytes([layer])
            + struct.pack(">Q", tree)
            + bytes([int(AddressType(type_))])
            + b"".join(packed_u32(w) for w in words)
        )


class Address:
    """Mutable SPHINCS+ hash address.

    The three trailing words are interpreted per type:

    * WOTS types: ``keypair`` / ``chain`` / ``hash`` (chain position)
    * tree types: ``keypair`` (unused) / ``tree_height`` / ``tree_index``

    The same storage backs both views, as in the specification.
    """

    __slots__ = ("layer", "tree", "type", "word1", "word2", "word3")

    def __init__(self) -> None:
        self.layer = 0
        self.tree = 0
        self.type = AddressType.WOTS_HASH
        self.word1 = 0
        self.word2 = 0
        self.word3 = 0

    # -- structural setters -------------------------------------------------
    def set_layer(self, layer: int) -> "Address":
        if not 0 <= layer <= 0xFF:
            raise AddressError(f"layer {layer} out of range for compressed ADRS")
        self.layer = layer
        return self

    def set_tree(self, tree: int) -> "Address":
        if not 0 <= tree <= _MASK64:
            raise AddressError(f"tree index {tree} exceeds 64 bits")
        self.tree = tree
        return self

    def set_type(self, type_: AddressType) -> "Address":
        """Set the type word and zero the type-specific words (per spec)."""
        self.type = AddressType(type_)
        self.word1 = self.word2 = self.word3 = 0
        return self

    # -- WOTS view -----------------------------------------------------------
    def set_keypair(self, keypair: int) -> "Address":
        self._check32(keypair, "keypair")
        self.word1 = keypair
        return self

    @property
    def keypair(self) -> int:
        return self.word1

    def set_chain(self, chain: int) -> "Address":
        self._check32(chain, "chain")
        self.word2 = chain
        return self

    def set_hash(self, hash_: int) -> "Address":
        self._check32(hash_, "hash")
        self.word3 = hash_
        return self

    # -- tree view -----------------------------------------------------------
    def set_tree_height(self, height: int) -> "Address":
        self._check32(height, "tree_height")
        self.word2 = height
        return self

    @property
    def tree_height(self) -> int:
        return self.word2

    def set_tree_index(self, index: int) -> "Address":
        self._check32(index, "tree_index")
        self.word3 = index
        return self

    @property
    def tree_index(self) -> int:
        return self.word3

    # -- serialization -------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Full 32-byte ADRS (layer 4B, tree 12B, type 4B, 3 words)."""
        return (
            struct.pack(">I", self.layer)
            + struct.pack(">Q", self.tree).rjust(12, b"\x00")
            + struct.pack(">I", int(self.type))
            + struct.pack(">III", self.word1, self.word2, self.word3)
        )

    def compressed(self) -> bytes:
        """22-byte compressed ADRS used by the SHA-256 instantiation."""
        return (
            bytes([self.layer])
            + struct.pack(">Q", self.tree)
            + bytes([int(self.type)])
            + struct.pack(">III", self.word1, self.word2, self.word3)
        )

    def copy(self) -> "Address":
        dup = Address()
        dup.layer = self.layer
        dup.tree = self.tree
        dup.type = self.type
        dup.word1 = self.word1
        dup.word2 = self.word2
        dup.word3 = self.word3
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Address):
            return NotImplemented
        return self.compressed() == other.compressed()

    def __hash__(self) -> int:
        return hash(self.compressed())

    def __repr__(self) -> str:
        return (
            f"Address(layer={self.layer}, tree={self.tree}, type={self.type.name}, "
            f"words=({self.word1}, {self.word2}, {self.word3}))"
        )

    @staticmethod
    def _check32(value: int, name: str) -> None:
        if not 0 <= value <= _MASK32:
            raise AddressError(f"{name} {value} exceeds 32 bits")
