"""SHA-256 with an instrumented compression function.

Two implementations live here:

* :func:`sha256` — thin wrapper over :mod:`hashlib` used on every hot path
  of the functional SPHINCS+ layer.
* :class:`Sha256` — a from-scratch pure-Python implementation.  It exists
  for two reasons: (1) as an independently testable reference the test
  suite checks against ``hashlib``, and (2) as the *source of truth for the
  GPU compiler model*: :func:`count_compression_ops` replays one
  compression-function invocation while tallying the primitive 32-bit
  operations (rotates, shifts, xors, ands, adds, big-endian loads).  The
  native-vs-PTX instruction mixes in :mod:`repro.gpusim.compiler` are
  derived from these measured counts, mirroring how HERO-Sign's PTX branch
  replaces multi-``shl`` byte swaps with single ``prmt`` permutations.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

__all__ = ["sha256", "Sha256", "OpCounts", "count_compression_ops"]

_MASK32 = 0xFFFFFFFF

# FIPS 180-4 round constants.
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of *data* (hashlib-backed fast path)."""
    return hashlib.sha256(data).digest()


def _rotr(x: int, r: int) -> int:
    return ((x >> r) | (x << (32 - r))) & _MASK32


@dataclass
class OpCounts:
    """Primitive 32-bit operation counts for one SHA-256 compression call.

    The fields map onto the instruction classes the GPU compiler model
    cares about.  ``endian_loads`` counts the 16 big-endian word loads of a
    block — the operation HERO-Sign's PTX branch rewrites from a four-shift
    byte swap into one ``prmt``.
    """

    rotates: int = 0
    shifts: int = 0
    xors: int = 0
    ands: int = 0
    nots: int = 0
    adds: int = 0
    endian_loads: int = 0

    def total(self) -> int:
        return (
            self.rotates + self.shifts + self.xors + self.ands + self.nots
            + self.adds + self.endian_loads
        )


class Sha256:
    """Incremental pure-Python SHA-256 (FIPS 180-4).

    Parameters
    ----------
    counts:
        Optional :class:`OpCounts` accumulator; when given, every
        compression call tallies its primitive operations into it.
    """

    block_size = 64
    digest_size = 32

    def __init__(self, data: bytes = b"", counts: OpCounts | None = None):
        self._h = list(_IV)
        self._buffer = b""
        self._length = 0
        self._counts = counts
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha256":
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        # Finalize a copy so the object stays usable.
        clone = Sha256()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        clone._counts = self._counts
        bit_len = clone._length * 8
        pad = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        clone.update(pad + struct.pack(">Q", bit_len))
        # Bypass update()'s length accounting for the padding we just fed.
        return b"".join(struct.pack(">I", word) for word in clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def _compress(self, block: bytes) -> None:
        c = self._counts
        w = list(struct.unpack(">16I", block))
        if c is not None:
            c.endian_loads += 16

        for i in range(16, 64):
            s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)
            if c is not None:
                c.rotates += 4
                c.shifts += 2
                c.xors += 4
                c.adds += 3

        a, b, cc, d, e, f, g, h = self._h
        for i in range(64):
            s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _K[i] + w[i]) & _MASK32
            s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & cc) ^ (b & cc)
            temp2 = (s0 + maj) & _MASK32
            h, g, f = g, f, e
            e = (d + temp1) & _MASK32
            d, cc, b = cc, b, a
            a = (temp1 + temp2) & _MASK32
            if c is not None:
                c.rotates += 6
                c.xors += 6
                c.ands += 5
                c.nots += 1
                c.adds += 7

        self._h = [
            (x + y) & _MASK32 for x, y in zip(self._h, (a, b, cc, d, e, f, g, h))
        ]
        if c is not None:
            c.adds += 8


def count_compression_ops() -> OpCounts:
    """Measure the primitive-operation profile of one compression call.

    Returns the :class:`OpCounts` for hashing a single 64-byte block
    (exactly one compression-function invocation, padding excluded).
    """
    counts = OpCounts()
    h = Sha256(counts=counts)
    h._compress(b"\x00" * 64)
    return counts
