"""Tweakable hash functions — the SHA-256 *simple* instantiation.

SPHINCS+ builds every internal operation from a small family of keyed,
addressed hash functions.  This module implements the "simple" SHA-256
construction of the round-3 specification:

* ``T_l(pk_seed, adrs, m)   = SHA-256(pk_seed || pad || compressed(adrs) || m)``
* ``PRF(pk_seed, sk_seed, adrs)`` — same construction over ``sk_seed``
* ``H_msg / PRF_msg``        — message digesting with MGF1 expansion

``pad`` right-pads ``pk_seed`` to the 64-byte SHA-256 block so the first
compression-function call depends only on the seed and can be cached — the
same precomputation trick every optimized implementation (including the
paper's CUDA kernels) relies on.  We cache that midstate per context, and a
``hash_counter`` tallies compression-equivalent calls so the GPU workload
builders can be validated against the functional layer's true hash counts.

Outputs longer than ``n`` bytes are truncated; H_msg uses MGF1 to stretch
the digest to the index-extraction length.
"""

from __future__ import annotations

import hashlib
import struct

from ..params import SphincsParams
from .address import Address

__all__ = ["HashContext", "mgf1_sha256"]

_BLOCK = 64


def mgf1_sha256(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation (PKCS#1) over SHA-256."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(seed + struct.pack(">I", counter)).digest()
        counter += 1
    return bytes(out[:length])


class HashContext:
    """All tweakable-hash operations for one parameter set and key pair.

    Parameters
    ----------
    params:
        The SPHINCS+ parameter set (supplies ``n``).
    count_hashes:
        When true, every T-hash/PRF call increments :attr:`hash_calls`
        (by the number of SHA-256 compression invocations beyond the cached
        seed midstate), letting tests cross-check the analytical workload
        model against ground truth.
    The midstate cache is shared *through* the context object:
    :meth:`midstate` exposes the primed seed-block hash, which is how the
    runtime's fast-path loops (``repro.runtime.fastops``) sign every
    message of a batch off the same precomputation as the scalar code.
    """

    def __init__(self, params: SphincsParams, count_hashes: bool = False):
        self.params = params
        self.n = params.n
        self._count = count_hashes
        self.hash_calls = 0
        #: Optional trace sink with a ``record(stage, label, value)`` method.
        #: When set, the SPHINCS+ components report their per-stage outputs
        #: (WOTS chain values, FORS roots, Merkle subtree roots, the
        #: hypertree walk) through it, so the conformance oracle can name
        #: the first diverging hop of two signing runs.  ``None`` (the
        #: default) keeps every hot path hook-free.
        self.tracer = None
        self._midstates: dict[bytes, "hashlib._Hash"] = {}

    # ------------------------------------------------------------------
    @property
    def counting(self) -> bool:
        """Whether T-hash/PRF calls tally :attr:`hash_calls`.

        Writable: the observability layer's stage tap
        (``repro.obs.trace.StageAggregator``) flips it on for the span
        of one batch to attribute compression calls per signer stage,
        then restores the constructor's setting.
        """
        return self._count

    @counting.setter
    def counting(self, value: bool) -> None:
        self._count = bool(value)

    def reset_counter(self) -> None:
        self.hash_calls = 0

    def midstate(self, seed: bytes) -> "hashlib._Hash":
        """The cached SHA-256 object primed with ``seed || pad``.

        Callers must ``.copy()`` before updating; the returned object is the
        shared cache entry.  This is the hook the vectorized runtime backend
        uses to run its template-based hot loops off the same midstate cache
        as the scalar code.
        """
        state = self._midstates.get(seed)
        if state is None:
            state = hashlib.sha256(seed + b"\x00" * (_BLOCK - len(seed)))
            self._midstates[seed] = state
        return state

    def _seeded(self, seed: bytes) -> "hashlib._Hash":
        """A SHA-256 object primed with ``seed || pad`` (cached midstate)."""
        return self.midstate(seed).copy()

    def _tally(self, message_bytes: int) -> None:
        if self._count:
            # Compression calls past the cached seed block: ADRS (22B) +
            # message, plus padding.
            total = 22 + message_bytes + 9  # 0x80 byte + 8-byte length
            self.hash_calls += (total + _BLOCK - 1) // _BLOCK

    # ------------------------------------------------------------------
    # Core tweakable hash
    # ------------------------------------------------------------------
    def thash(self, pk_seed: bytes, adrs: Address, *chunks: bytes) -> bytes:
        """``T_l``: hash ``l`` n-byte chunks under (pk_seed, adrs)."""
        h = self._seeded(pk_seed)
        h.update(adrs.compressed())
        total = 0
        for chunk in chunks:
            h.update(chunk)
            total += len(chunk)
        self._tally(total)
        return h.digest()[: self.n]

    def prf(self, pk_seed: bytes, sk_seed: bytes, adrs: Address) -> bytes:
        """``PRF``: derive an n-byte secret value for *adrs*."""
        h = self._seeded(pk_seed)
        h.update(adrs.compressed())
        h.update(sk_seed)
        self._tally(self.n)
        return h.digest()[: self.n]

    # ------------------------------------------------------------------
    # Message hashing
    # ------------------------------------------------------------------
    def prf_msg(self, sk_prf: bytes, opt_rand: bytes, message: bytes) -> bytes:
        """Randomizer ``R = PRF_msg(sk_prf, opt_rand, M)`` (HMAC-SHA-256)."""
        import hmac

        digest = hmac.new(sk_prf, opt_rand + message, hashlib.sha256).digest()
        if self._count:
            self.hash_calls += 2 + (len(opt_rand) + len(message) + 72) // _BLOCK
        return digest[: self.n]

    def h_msg(self, randomizer: bytes, pk_seed: bytes, pk_root: bytes,
              message: bytes) -> bytes:
        """``H_msg``: digest the message to ``params.digest_bytes`` bytes."""
        inner = hashlib.sha256(randomizer + pk_seed + pk_root + message).digest()
        if self._count:
            payload = len(randomizer) + len(pk_seed) + len(pk_root) + len(message)
            self.hash_calls += (payload + 9 + _BLOCK - 1) // _BLOCK
        return mgf1_sha256(randomizer + pk_seed + inner, self.params.digest_bytes)
