"""Hash primitives for the SPHINCS+ functional layer and the compiler model.

Exports
-------
``sha256``/``Sha256``
    A real pure-Python SHA-256 used both for computation (with a fast
    ``hashlib`` path) and, in instrumented mode, to *count* the primitive
    operations of the compression function.  Those counts feed
    :mod:`repro.gpusim.compiler` so the GPU instruction-mix model is derived
    from the actual algorithm rather than hand-entered constants.
``Address``
    The SPHINCS+ hash address (ADRS) structure, including the compressed
    22-byte form used by the SHA-256 instantiation.
``thash``/``prf``/``h_msg`` ...
    The tweakable hash constructions of the SHA-256 *simple* instantiation.
"""

from .sha256 import Sha256, OpCounts, sha256, count_compression_ops
from .address import Address, AddressType
from .thash import HashContext

__all__ = [
    "Sha256",
    "OpCounts",
    "sha256",
    "count_compression_ops",
    "Address",
    "AddressType",
    "HashContext",
]
