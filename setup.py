"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so legacy editable installs (``pip install -e . --no-use-pep517``,
offline environments without the ``wheel`` package) still work.
"""

from setuptools import setup

setup()
