"""Async service latency/throughput — the service tier's perf baseline.

Not a paper table: a Poisson stream is replayed against the in-process
signing service and the client-observed latency distribution, achieved
throughput, and dispatched batch-size histogram are recorded as JSON
next to ``backend_throughput.json``, so future service PRs (smarter
batching, parallel dispatch, sharded backends) have a baseline to beat.

Set ``REPRO_SMOKE=1`` for the tiny CI configuration that just proves the
service path end-to-end on every push.
"""

import asyncio
import json

from conftest import SMOKE, json_baseline_dir

from repro.service import (Keystore, LoadGenerator, SigningService,
                           derive_seed, poisson_trace)
MESSAGES = 8 if SMOKE else 48
# Full runs offer load just under the vectorized backend's single-lock
# capacity (~13 sig/s on the reference box) so the record is a *latency*
# baseline, not a queue-growth measurement; smoke runs compress arrivals
# to finish fast.
RATE = 40.0 if SMOKE else 10.0  # offered requests/second
TARGET_BATCH = 4 if SMOKE else 8
MAX_WAIT_S = 0.05

# Steady-state phase: the same service with a hypertree layer cache and a
# small repeat working set (heartbeats / re-attestations), measured at the
# deadline-critical offered rate from the paper's service scenario.  A warm
# sign costs milliseconds, so batching buys nothing at 10/s — the phase
# runs with immediate dispatch and must land p50 under the 50 ms deadline.
STEADY_MESSAGES = 16 if SMOKE else 48
STEADY_RATE = 10.0          # offered requests/second, both modes
WORKING_SET = 4             # distinct payloads cycled by the trace
CACHE_BUDGET_MB = 32.0
DEADLINE_MS = 50.0


def _steady_state_phase():
    """Warm-cache repeat traffic: prewarmed layer cache, tiny working set.

    Returns the load report plus the in-process layer-cache counters so
    the baseline records *why* the latency dropped (tree/link hits), not
    just that it did.
    """
    service = SigningService(
        Keystore(), backend="vectorized",
        target_batch_size=1, max_wait_s=MAX_WAIT_S,
        max_pending=4 * STEADY_MESSAGES, deterministic=True,
        cache_budget_mb=CACHE_BUDGET_MB,
    )
    service.keystore.add_tenant("bench", "128f")
    service.keystore.generate_key("bench", seed=derive_seed("bench", 16))
    payloads = [f"attestation #{i}".encode() for i in range(WORKING_SET)]

    async def scenario():
        async def signer(message):
            return await service.sign(message, "bench")

        # Warm-up: one cold sign per working-set payload fills the LRU
        # region (the pinned region was prewarmed at construction), so
        # the measured trace is pure steady state.
        for payload in payloads:
            await signer(payload)

        generator = LoadGenerator(
            signer, message_factory=lambda i: payloads[i % WORKING_SET])
        offsets = poisson_trace(STEADY_MESSAGES, rate=STEADY_RATE, seed=7)
        try:
            return await generator.run(offsets, trace="poisson")
        finally:
            await service.drain()
            service.close()

    report = asyncio.run(scenario())
    assert report.signed == STEADY_MESSAGES, (
        f"{report.shed} shed / {report.failed} failed of {STEADY_MESSAGES}"
    )
    # The acceptance gate: warm steady state must meet the deadline.
    assert report.latency_ms(50) < DEADLINE_MS, (
        f"steady-state p50 {report.latency_ms(50)} ms >= {DEADLINE_MS} ms"
    )
    scopes = service.stats().get("cache", {}).get("scopes", {})
    cache = next(iter(scopes.values()), {})
    return report, {key: cache.get(key, 0) for key in
                    ("hits", "misses", "link_hits", "link_misses")}


def test_service_poisson_latency(emit):
    service = SigningService(
        Keystore(), backend="vectorized",
        target_batch_size=TARGET_BATCH, max_wait_s=MAX_WAIT_S,
        max_pending=4 * MESSAGES, deterministic=True,
    )
    service.keystore.add_tenant("bench", "128f")
    service.keystore.generate_key("bench", seed=derive_seed("bench", 16))

    async def scenario():
        async def signer(message):
            return await service.sign(message, "bench")

        generator = LoadGenerator(signer)
        offsets = poisson_trace(MESSAGES, rate=RATE, seed=42)
        try:
            return await generator.run(offsets, trace="poisson")
        finally:
            await service.drain()
            service.close()

    report = asyncio.run(scenario())

    assert report.signed == MESSAGES, (
        f"{report.shed} shed / {report.failed} failed of {MESSAGES}"
    )
    assert report.latency_ms(99) > 0

    stats = service.stats()
    steady, steady_cache = _steady_state_phase()
    record = {
        "trace": "poisson",
        "params": "SPHINCS+-128f",
        "backend": "vectorized",
        "smoke": SMOKE,
        # Version of the stats-snapshot shape the sections below were
        # read from; compare_baselines.py refuses to diff across a bump.
        "snapshot_schema": stats["snapshot_schema"],
        "messages": MESSAGES,
        "offered_rate": RATE,
        "target_batch_size": TARGET_BATCH,
        "max_wait_ms": MAX_WAIT_S * 1000.0,
        "achieved_sigs_per_s": round(report.achieved_rate, 4),
        "latency_ms": {
            "p50": report.latency_ms(50),
            "p95": report.latency_ms(95),
            "p99": report.latency_ms(99),
        },
        "queue_wait_ms": stats["latency_ms"]["wait"],
        "batch_histogram": stats["batches"]["histogram"],
        "shed": report.shed,
        "steady_state": {
            "messages": STEADY_MESSAGES,
            "offered_rate": STEADY_RATE,
            "working_set": WORKING_SET,
            "cache_budget_mb": CACHE_BUDGET_MB,
            "target_batch_size": 1,
            "deadline_ms": DEADLINE_MS,
            "achieved_sigs_per_s": round(steady.achieved_rate, 4),
            "latency_ms": {
                "p50": steady.latency_ms(50),
                "p95": steady.latency_ms(95),
                "p99": steady.latency_ms(99),
            },
            "cache": steady_cache,
        },
    }
    (json_baseline_dir() / "service_latency.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("service_latency", format_table(
        ["phase", "msgs", "offered/s", "achieved/s", "p50 ms", "p95 ms",
         "p99 ms"],
        [["cold / distinct", MESSAGES, RATE,
          round(report.achieved_rate, 2), report.latency_ms(50),
          report.latency_ms(95), report.latency_ms(99)],
         ["warm / repeat", STEADY_MESSAGES, STEADY_RATE,
          round(steady.achieved_rate, 2), steady.latency_ms(50),
          steady.latency_ms(95), steady.latency_ms(99)]],
        title=f"Service latency, Poisson arrivals, "
              f"deadline {DEADLINE_MS:.0f} ms "
              f"(cold batch<={TARGET_BATCH}; warm immediate dispatch, "
              f"{CACHE_BUDGET_MB:.0f} MiB/key cache)",
    ))
