"""Async service latency/throughput — the service tier's perf baseline.

Not a paper table: a Poisson stream is replayed against the in-process
signing service and the client-observed latency distribution, achieved
throughput, and dispatched batch-size histogram are recorded as JSON
next to ``backend_throughput.json``, so future service PRs (smarter
batching, parallel dispatch, sharded backends) have a baseline to beat.

Set ``REPRO_SMOKE=1`` for the tiny CI configuration that just proves the
service path end-to-end on every push.
"""

import asyncio
import json

from conftest import SMOKE, json_baseline_dir

from repro.service import (Keystore, LoadGenerator, SigningService,
                           derive_seed, poisson_trace)
MESSAGES = 8 if SMOKE else 48
# Full runs offer load just under the vectorized backend's single-lock
# capacity (~13 sig/s on the reference box) so the record is a *latency*
# baseline, not a queue-growth measurement; smoke runs compress arrivals
# to finish fast.
RATE = 40.0 if SMOKE else 10.0  # offered requests/second
TARGET_BATCH = 4 if SMOKE else 8
MAX_WAIT_S = 0.05


def test_service_poisson_latency(emit):
    service = SigningService(
        Keystore(), backend="vectorized",
        target_batch_size=TARGET_BATCH, max_wait_s=MAX_WAIT_S,
        max_pending=4 * MESSAGES, deterministic=True,
    )
    service.keystore.add_tenant("bench", "128f")
    service.keystore.generate_key("bench", seed=derive_seed("bench", 16))

    async def scenario():
        async def signer(message):
            return await service.sign(message, "bench")

        generator = LoadGenerator(signer)
        offsets = poisson_trace(MESSAGES, rate=RATE, seed=42)
        try:
            return await generator.run(offsets, trace="poisson")
        finally:
            await service.drain()
            service.close()

    report = asyncio.run(scenario())

    assert report.signed == MESSAGES, (
        f"{report.shed} shed / {report.failed} failed of {MESSAGES}"
    )
    assert report.latency_ms(99) > 0

    stats = service.stats()
    record = {
        "trace": "poisson",
        "params": "SPHINCS+-128f",
        "backend": "vectorized",
        "smoke": SMOKE,
        "messages": MESSAGES,
        "offered_rate": RATE,
        "target_batch_size": TARGET_BATCH,
        "max_wait_ms": MAX_WAIT_S * 1000.0,
        "achieved_sigs_per_s": round(report.achieved_rate, 4),
        "latency_ms": {
            "p50": report.latency_ms(50),
            "p95": report.latency_ms(95),
            "p99": report.latency_ms(99),
        },
        "queue_wait_ms": stats["latency_ms"]["wait"],
        "batch_histogram": stats["batches"]["histogram"],
        "shed": report.shed,
    }
    (json_baseline_dir() / "service_latency.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("service_latency", format_table(
        ["trace", "msgs", "offered/s", "achieved/s", "p50 ms", "p95 ms",
         "p99 ms", "batches"],
        [["poisson", MESSAGES, RATE, round(report.achieved_rate, 2),
          report.latency_ms(50), report.latency_ms(95),
          report.latency_ms(99), stats["batches"]["dispatched"]]],
        title=f"Service latency, Poisson arrivals, batch<={TARGET_BATCH}, "
              f"deadline {MAX_WAIT_S * 1000:.0f} ms",
    ))
