"""Table II: TCAS-SPHINCSp time breakdown (FORS / idle / MSS / WOTS+), ms.

Workload: 1024 messages on the modeled RTX 4090, baseline feature set.
The idle row comes from the baseline's host-synchronized launch flow on
the execution timeline.
"""


from repro.analysis import PAPER, format_table
from repro.analysis.reporting import shape_check
from repro.core.baseline import baseline_plans
from repro.core.batch import run_batch
from repro.core.pipeline import kernel_report
from repro.params import get_params

ALIASES = ("128f", "192f", "256f")


def _breakdown(alias, rtx4090, engine):
    params = get_params(alias)
    plans = baseline_plans(params, rtx4090)
    times = {
        name: kernel_report(plan, engine).time_ms
        for name, plan in plans.items()
    }
    batch = run_batch(params, rtx4090, "baseline", engine=engine)
    return {
        "FORS": times["FORS_Sign"],
        "idle": batch.gpu_idle_s * 1e3,
        "MSS": times["TREE_Sign"],
        "WOTS": times["WOTS_Sign"],
    }


def test_table2_baseline_breakdown(rtx4090, engine, emit, benchmark):
    rows = []
    measured_all = {}
    for alias in ALIASES:
        measured = _breakdown(alias, rtx4090, engine)
        measured_all[alias] = measured
        paper = PAPER["table2_breakdown_ms"][alias]
        for component in ("FORS", "idle", "MSS", "WOTS"):
            rows.append([
                f"SPHINCS+-{alias}", component,
                round(paper[component], 2), round(measured[component], 2),
            ])
    emit("table2_baseline_breakdown", format_table(
        ["parameter set", "component", "paper ms", "measured ms"], rows,
        title="Table II — TCAS-SPHINCSp time breakdown (1024 messages, RTX 4090)",
    ))

    # Shape: MSS dominates everywhere; FORS and MSS within x2.5 of paper.
    for alias in ALIASES:
        m = measured_all[alias]
        assert m["MSS"] == max(m.values())
        shape_check(m["FORS"], PAPER["table2_breakdown_ms"][alias]["FORS"],
                    1.5, label=f"FORS {alias}")
        shape_check(m["MSS"], PAPER["table2_breakdown_ms"][alias]["MSS"],
                    1.5, label=f"MSS {alias}")

    benchmark(_breakdown, "128f", rtx4090, engine)
