"""Table X: AVX2 CPU throughput (KOPS), single thread and 16 threads."""

import pytest

from repro.analysis import PAPER, format_table
from repro.cpu.avx2 import Avx2Model
from repro.params import get_params


def test_table10_avx2(emit, benchmark):
    model = Avx2Model()
    measured = benchmark(lambda: {
        alias: (model.kops(get_params(alias), 1),
                model.kops(get_params(alias), 16))
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, (single, sixteen) in measured.items():
        rows.append([
            f"SPHINCS+-{alias}",
            PAPER["table10_avx2"]["single"][alias], round(single, 4),
            PAPER["table10_avx2"]["threads16"][alias], round(sixteen, 4),
        ])
    emit("table10_avx2", format_table(
        ["parameter set", "1 thread (paper)", "1 thread (model)",
         "16 threads (paper)", "16 threads (model)"],
        rows,
        title="Table X — AVX2 CPU throughput (KOPS)",
    ))

    for alias, (single, _) in measured.items():
        assert single == pytest.approx(
            PAPER["table10_avx2"]["single"][alias], rel=0.05
        )
