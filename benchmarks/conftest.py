"""Benchmark-harness fixtures.

Every bench renders its paper-vs-measured table through :func:`emit`, which
prints it (visible with ``pytest -s`` and in the benchmark log) and writes
it under ``benchmarks/results/`` so the full set of reproduced tables can
be inspected after a run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.engine import TimingEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Smoke mode (``REPRO_SMOKE=1``): tiny configurations for CI.  JSON perf
#: baselines are mode-specific — smoke runs write under ``results/smoke/``
#: so they never clobber the pinned full-mode numbers (and vice versa);
#: ``compare_baselines.py`` picks the matching pinned file per mode.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def json_baseline_dir() -> pathlib.Path:
    """Where this run's JSON perf baselines belong (mode-specific)."""
    directory = RESULTS_DIR / "smoke" if SMOKE else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def rtx4090():
    return get_device("RTX 4090")


@pytest.fixture(scope="session")
def engine():
    return TimingEngine()


@pytest.fixture(scope="session")
def emit():
    # Same mode split as the JSON baselines: a smoke run must never
    # clobber the pinned full-mode tables in the working tree.
    directory = json_baseline_dir()

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (directory / f"{name}.txt").write_text(text + "\n")

    return _emit
