"""Benchmark-harness fixtures.

Every bench renders its paper-vs-measured table through :func:`emit`, which
prints it (visible with ``pytest -s`` and in the benchmark log) and writes
it under ``benchmarks/results/`` so the full set of reproduced tables can
be inspected after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.engine import TimingEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def rtx4090():
    return get_device("RTX 4090")


@pytest.fixture(scope="session")
def engine():
    return TimingEngine()


@pytest.fixture(scope="session")
def emit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
