"""Cluster scale-out — the router tier's perf + chaos baseline.

Not a paper table: a fixed multi-tenant workload is signed through a
:class:`~repro.cluster.LocalCluster` (real ``SigningServer`` nodes on
loopback ports behind a real :class:`~repro.cluster.ClusterRouter`) with
one and then two backend nodes, each node running a single worker
*process* so the two-node configuration genuinely uses two cores.  The
achieved sig/s per configuration and the 2-node-vs-1-node speedup are
recorded as ``cluster_scaling.json`` next to the other baselines.

Two claims are pinned here, matching the acceptance criteria of the
cluster PR:

* **Scaling** — on a box with the cores to show it, two nodes beat one
  at the same latency deadline (the perf gate compares like-for-like
  against the pinned record, so a single-core CI runner pins a tie
  rather than faking a speedup).
* **Chaos** — killing a node mid-loadtest re-homes its tenants onto the
  survivor and every in-flight request resolves to a signature or a
  typed service error.  ``node_kill.unresolved`` is asserted zero on
  every run, smoke or full: a hang or an untyped crash fails the
  benchmark outright.

Byte-identity against the scalar reference is asserted for every
signature — including those signed *after* the kill, which proves the
failover node holds the same keys and signs the same bytes.  Set
``REPRO_SMOKE=1`` for the tiny CI configuration.
"""

import asyncio
import json
import os
import time

from conftest import SMOKE, json_baseline_dir

from repro.api import AsyncClusterClient
from repro.cluster import LocalCluster
from repro.errors import ServiceError
from repro.runtime import get_backend
from repro.service import Keystore, SigningService, derive_seed
from repro.params import get_params

NODE_CONFIGS = (1, 2)
TENANTS = 2 if SMOKE else 4
MESSAGES_PER_TENANT = 2 if SMOKE else 4
KILL_MESSAGES_PER_TENANT = 2 if SMOKE else 4
PARAMS = "128f"
#: One worker *process* per node: node count == usable cores, so the
#: two-node config measures real scale-out, not GIL-shared threads.
NODE_WORKERS = 1
#: Queue-wait budget applied identically to every configuration — the
#: "equal latency deadline" under which the scaling claim is made.
DEADLINE_MS = 5_000.0
CHAOS_TIMEOUT_S = 120.0


def _tenants() -> list[str]:
    return [f"tenant-{i}" for i in range(TENANTS)]


def _messages(tenant: str, count: int, phase: str = "load") -> list[bytes]:
    return [f"{phase}/{tenant}/m{i}".encode() for i in range(count)]


def _keystore() -> Keystore:
    """Identically seeded on every call — the cluster invariant that a
    tenant re-homed to another node resolves the same key bytes there."""
    n = get_params(PARAMS).n
    store = Keystore()
    for tenant in _tenants():
        store.add_tenant(tenant, PARAMS)
        store.generate_key(tenant,
                           seed=derive_seed(f"cluster-bench-{tenant}", n))
    return store


def _reference_signatures() -> dict[tuple[str, bytes], bytes]:
    """Scalar-backend signatures for every message either phase signs."""
    scalar = get_backend("scalar", PARAMS, deterministic=True)
    store = _keystore()
    expected: dict[tuple[str, bytes], bytes] = {}
    for tenant in _tenants():
        keys, _ = store.resolve(tenant)
        messages = (_messages(tenant, MESSAGES_PER_TENANT)
                    + _messages(tenant, KILL_MESSAGES_PER_TENANT, "chaos"))
        for message, signature in zip(
                messages, scalar.sign_batch(messages, keys).signatures):
            expected[(tenant, message)] = signature
    return expected


def _node_factory() -> SigningService:
    return SigningService(
        _keystore(), backend="vectorized", workers=NODE_WORKERS,
        target_batch_size=MESSAGES_PER_TENANT, max_wait_s=0.02,
        max_pending=8 * TENANTS * max(MESSAGES_PER_TENANT,
                                      KILL_MESSAGES_PER_TENANT),
        deterministic=True)


async def _measure(client: AsyncClusterClient, nodes: int,
                   expected: dict) -> dict:
    """Steady-state throughput: all tenants' batches submitted at once."""
    # Warm first so the measurement sees resident keys and built layer
    # caches on every node, mirroring the pool benchmark's discipline.
    await asyncio.gather(*(client.sign(tenant, b"warmup",
                                       deadline_ms=DEADLINE_MS)
                           for tenant in _tenants()))
    started = time.perf_counter()
    batches = await asyncio.gather(*(
        client.sign_many(tenant, _messages(tenant, MESSAGES_PER_TENANT),
                         deadline_ms=DEADLINE_MS)
        for tenant in _tenants()))
    elapsed = time.perf_counter() - started
    signed = 0
    for tenant, results in zip(_tenants(), batches):
        for message, result in zip(
                _messages(tenant, MESSAGES_PER_TENANT), results):
            assert result.signature == expected[(tenant, message)], (
                f"cluster signature diverged from the scalar reference "
                f"({nodes} node(s), tenant {tenant!r})"
            )
            signed += 1
    return {
        "sigs_per_s": round(signed / elapsed, 4),
        "elapsed_s": round(elapsed, 4),
        "signed": signed,
    }


async def _node_kill(cluster: LocalCluster, client: AsyncClusterClient,
                     expected: dict) -> dict:
    """Kill a node mid-loadtest; every request must resolve, typed."""
    work = [(tenant, message) for tenant in _tenants()
            for message in _messages(tenant, KILL_MESSAGES_PER_TENANT,
                                     "chaos")]
    tasks = [asyncio.create_task(
        client.sign(tenant, message, deadline_ms=DEADLINE_MS))
        for tenant, message in work]
    # Let the first forwards reach the victim before pulling the plug,
    # so the kill lands on genuinely in-flight requests.
    await asyncio.sleep(0.05)
    victim = cluster.owner(_tenants()[0])
    await cluster.kill_node(victim)
    outcomes = await asyncio.wait_for(
        asyncio.gather(*tasks, return_exceptions=True), CHAOS_TIMEOUT_S)

    signed = typed_errors = unresolved = 0
    for (tenant, message), outcome in zip(work, outcomes):
        if isinstance(outcome, ServiceError):
            typed_errors += 1
        elif isinstance(outcome, BaseException):
            unresolved += 1  # untyped crash — counted, asserted zero below
        else:
            signed += 1
            assert outcome.signature == expected[(tenant, message)], (
                f"failover changed signature bytes for tenant {tenant!r}"
            )
    return {
        "requests": len(work),
        "killed_node": victim,
        "signed": signed,
        "typed_errors": typed_errors,
        "unresolved": unresolved,
    }


async def _run(expected: dict) -> tuple[dict, dict]:
    configs = {}
    chaos = None
    for nodes in NODE_CONFIGS:
        cluster = await LocalCluster([_node_factory] * nodes,
                                     health_interval_s=0.2).start()
        client = await AsyncClusterClient.connect(port=cluster.port)
        try:
            configs[str(nodes)] = await _measure(client, nodes, expected)
            if nodes == max(NODE_CONFIGS):
                chaos = await _node_kill(cluster, client, expected)
        finally:
            await client.close()
            await cluster.stop()
    return configs, chaos


def test_cluster_scaling_and_node_kill(emit):
    expected = _reference_signatures()
    configs, chaos = asyncio.run(_run(expected))

    base = configs[str(NODE_CONFIGS[0])]["sigs_per_s"]
    scaling = {
        f"{nodes}n_vs_1n": round(
            configs[str(nodes)]["sigs_per_s"] / base, 4)
        for nodes in NODE_CONFIGS[1:]
    }

    record = {
        "params": f"SPHINCS+-{PARAMS}",
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "tenants": TENANTS,
        "messages_per_tenant": MESSAGES_PER_TENANT,
        "node_workers": NODE_WORKERS,
        "deadline_ms": DEADLINE_MS,
        "configs": configs,
        "scaling": scaling,
        "node_kill": chaos,
    }
    (json_baseline_dir() / "cluster_scaling.json").write_text(
        json.dumps(record, indent=2) + "\n")

    # The chaos invariant holds everywhere, every run: a killed node
    # never leaves a request hanging or dying untyped.
    assert chaos["unresolved"] == 0, (
        f"{chaos['unresolved']} in-flight request(s) resolved to neither "
        f"a signature nor a typed error after the node kill: {chaos}"
    )
    assert chaos["signed"] + chaos["typed_errors"] == chaos["requests"]

    # The hard scaling claim only holds where the cores exist: two
    # 1-worker nodes plus the router and client need ~4 schedulable
    # cores.  A single-core box legitimately ties; the perf gate
    # compares like-for-like against the pinned baseline.
    if (os.cpu_count() or 1) >= 4:
        assert scaling["2n_vs_1n"] >= 1.5, (
            f"2-node cluster should beat 1 node by >=1.5x on a "
            f"{os.cpu_count()}-core box, got {scaling['2n_vs_1n']:.2f}x"
        )

    from repro.analysis import format_table

    emit("cluster_scaling", format_table(
        ["nodes", "signed", "wall s", "sig/s", "vs 1n"],
        [[nodes, configs[str(nodes)]["signed"],
          configs[str(nodes)]["elapsed_s"],
          configs[str(nodes)]["sigs_per_s"],
          f"{configs[str(nodes)]['sigs_per_s'] / base:.2f}x"]
         for nodes in NODE_CONFIGS]
        + [[f"kill@{chaos['killed_node']}", chaos["signed"], "-", "-",
            f"{chaos['typed_errors']} typed err, "
            f"{chaos['unresolved']} unresolved"]],
        title=(f"Cluster scaling, {TENANTS} tenants x "
               f"{MESSAGES_PER_TENANT} msgs, {NODE_WORKERS} worker/node, "
               f"{os.cpu_count()} CPU core(s)"),
    ))
