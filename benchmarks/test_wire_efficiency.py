"""Wire efficiency: protocol-v3 binary frames vs v2 JSON lines.

Not a paper table: the v3 framing PR's acceptance baseline.  Two
phases, both recorded to ``wire_efficiency.json`` next to the other
JSON perf baselines and gated by ``compare_baselines.py``:

``codec``
    The serialization stack in isolation — encode+decode one ``sign``
    result (a 17 KiB SPHINCS+-128f signature) through the v2 path
    (base64 + JSON line) and the v3 path (binary frame), measured with
    ``time.process_time`` so the numbers are CPU, not wall.

``live``
    A real server on localhost, one v2 client and one v3 client
    signing the same warm working set through the facade (pipelined
    single ``sign`` calls, so both modes form the same server-side
    batches).  Wire bytes come from the client's own
    ``bytes_sent``/``bytes_received`` counters.  CPU-seconds per
    signature is measured in *paired rounds*: each round runs one v2
    pass then one v3 pass back-to-back and records the difference, so
    slow machine-level drift (frequency scaling, noisy neighbours)
    cancels within the pair; the verdict is the median of the paired
    deltas, with GC parked during the measured passes (client and
    server share the process, so this is the whole stack).

The in-test acceptance gate: v3 must move >=25% fewer bytes per
signature and spend less CPU per signature than v2 on the warm
vectorized path.

Set ``REPRO_SMOKE=1`` for the tiny CI configuration.
"""

import asyncio
import gc
import json
import time

from conftest import SMOKE, json_baseline_dir

from repro.api import AsyncClient
from repro.service import (Keystore, SigningServer, SigningService,
                           derive_seed, protocol)

MESSAGES = 16 if SMOKE else 24   # signatures per measured pass
BATCH = 8                        # concurrent signs per pipelined burst
MESSAGE_BYTES = 4096             # attestation payload; big enough that
                                 # the v2 request pays base64+JSON too
CODEC_ITERS = 300 if SMOKE else 3000
ROUNDS = 5 if SMOKE else 9       # paired v2/v3 rounds (median delta)
CACHE_BUDGET_MB = 32.0           # prewarmed hypertree layer cache

_SIGNATURE = b"\xa5" * 17088     # SPHINCS+-128f signature size
_MESSAGE = b"\x5a" * MESSAGE_BYTES


def _codec_phase() -> dict:
    """CPU and bytes for one encoded sign result, v2 line vs v3 frame."""
    def v2_encode() -> bytes:
        return protocol.encode({
            "ok": True, "op": "sign", "id": 7,
            "signature": protocol.pack_bytes(_SIGNATURE),
            "params": "SPHINCS+-128f", "backend": "vectorized",
            "batch_size": BATCH, "wait_ms": 1.0, "total_ms": 2.0})

    def v2_decode(line: bytes) -> None:
        response = protocol.decode(line)
        protocol.unpack_bytes(response["signature"], name="signature")

    def v3_encode() -> bytes:
        return protocol.encode_frame(
            protocol.FRAME_CODES["sign"],
            protocol.pack_sign_result(_SIGNATURE, "SPHINCS+-128f",
                                      "vectorized", BATCH, 1.0, 2.0),
            id=7, flags=protocol.FLAG_OK)

    def v3_decode(body: bytes) -> None:
        frame = protocol.decode_frame(memoryview(body)[4:])
        protocol.unpack_sign_result(frame.payload)

    def cpu_us_per_op(encode, decode) -> float:
        body = encode()
        start = time.process_time()
        for _ in range(CODEC_ITERS):
            decode(encode())
        return (time.process_time() - start) / CODEC_ITERS * 1e6

    v2_bytes, v3_bytes = len(v2_encode()), len(v3_encode())
    v2_cpu = cpu_us_per_op(v2_encode, v2_decode)
    v3_cpu = cpu_us_per_op(v3_encode, v3_decode)
    return {
        "iters": CODEC_ITERS,
        "v2_bytes_per_result": v2_bytes,
        "v3_bytes_per_result": v3_bytes,
        "bytes_reduction": round(1.0 - v3_bytes / v2_bytes, 4),
        "v2_cpu_us_per_op": round(v2_cpu, 2),
        "v3_cpu_us_per_op": round(v3_cpu, 2),
        "cpu_speedup": round(v2_cpu / v3_cpu, 2) if v3_cpu > 0 else 0.0,
    }


def _live_phase() -> dict:
    """Same warm working set through a live server, v2 then v3."""
    service = SigningService(
        Keystore(), backend="vectorized",
        target_batch_size=BATCH, max_wait_s=0.02,
        max_pending=4 * MESSAGES, deterministic=True,
        cache_budget_mb=CACHE_BUDGET_MB,
    )
    service.keystore.add_tenant("bench", "128f")
    service.keystore.generate_key("bench", seed=derive_seed("bench", 16))
    server = SigningServer(service, port=0)
    messages = [f"attestation #{i:04d}".encode().ljust(MESSAGE_BYTES,
                                                       b".")
                for i in range(MESSAGES)]
    chunks = [messages[i:i + BATCH] for i in range(0, MESSAGES, BATCH)]

    async def one_pass(client) -> dict:
        """One measured pass: pipelined signs in bursts of BATCH."""
        wire = client._wire
        sent, received = wire.bytes_sent, wire.bytes_received
        cpu_start = time.process_time()
        for chunk in chunks:
            await asyncio.gather(*[client.sign("bench", message)
                                   for message in chunk])
        cpu = (time.process_time() - cpu_start) / MESSAGES
        moved = ((wire.bytes_sent - sent)
                 + (wire.bytes_received - received))
        return {"cpu": cpu, "bytes_per_sig": moved / MESSAGES}

    async def scenario():
        await server.start()
        try:
            v2 = await AsyncClient.connect(port=server.port, version=2)
            v3 = await AsyncClient.connect(port=server.port, version=3)
            try:
                assert v2._wire.binary is False
                assert v3._wire.binary is True
                # Warm-up both modes before anything is measured: fill
                # the layer cache and fault in both code paths.
                await one_pass(v2)
                await one_pass(v3)
                samples2, samples3 = [], []
                gc.collect()
                gc.disable()
                try:
                    for _ in range(ROUNDS):
                        samples2.append(await one_pass(v2))
                        samples3.append(await one_pass(v3))
                finally:
                    gc.enable()
                return samples2, samples3
            finally:
                await v2.close()
                await v3.close()
        finally:
            await server.stop()

    samples2, samples3 = asyncio.run(scenario())
    deltas = sorted(s2["cpu"] - s3["cpu"]
                    for s2, s3 in zip(samples2, samples3))
    median_delta = deltas[len(deltas) // 2]
    cpu2 = min(sample["cpu"] for sample in samples2)
    cpu3 = min(sample["cpu"] for sample in samples3)
    return {
        "messages": MESSAGES,
        "batch": BATCH,
        "message_bytes": MESSAGE_BYTES,
        "rounds": ROUNDS,
        "v2_bytes_per_sig": round(samples2[-1]["bytes_per_sig"], 1),
        "v3_bytes_per_sig": round(samples3[-1]["bytes_per_sig"], 1),
        "bytes_reduction": round(
            1.0 - samples3[-1]["bytes_per_sig"]
            / samples2[-1]["bytes_per_sig"], 4),
        "v2_cpu_s_per_sig": round(cpu2, 6),
        "v3_cpu_s_per_sig": round(cpu3, 6),
        "cpu_ratio": round(cpu3 / cpu2, 4),
        # Positive = v3 spends less CPU per signature than v2 when the
        # two are measured back-to-back (drift-cancelling pairs).
        "cpu_saved_s_per_sig": round(median_delta, 6),
    }


def test_wire_efficiency(emit):
    codec = _codec_phase()
    live = _live_phase()

    # The acceptance gate for the v3 framing work: fewer bytes moved
    # per signature (>=25%) and less CPU spent per signature, both on
    # the warm vectorized path.
    assert live["bytes_reduction"] >= 0.25, (
        f"v3 moved only {live['bytes_reduction']:.1%} fewer bytes/sig "
        f"than v2 (need >= 25%)")
    assert live["cpu_saved_s_per_sig"] > 0, (
        f"v3 did not spend less CPU per signature than v2: median "
        f"paired delta {live['cpu_saved_s_per_sig']} s/sig "
        f"(v2 best {live['v2_cpu_s_per_sig']}, "
        f"v3 best {live['v3_cpu_s_per_sig']})")
    assert codec["v3_cpu_us_per_op"] < codec["v2_cpu_us_per_op"]

    record = {
        "params": "SPHINCS+-128f",
        "backend": "vectorized",
        "smoke": SMOKE,
        "codec": codec,
        "live": live,
    }
    (json_baseline_dir() / "wire_efficiency.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("wire_efficiency", format_table(
        ["phase", "v2", "v3", "delta"],
        [["codec bytes/result", codec["v2_bytes_per_result"],
          codec["v3_bytes_per_result"],
          f"-{codec['bytes_reduction']:.1%}"],
         ["codec CPU us/op", codec["v2_cpu_us_per_op"],
          codec["v3_cpu_us_per_op"], f"{codec['cpu_speedup']}x"],
         ["live bytes/sig", live["v2_bytes_per_sig"],
          live["v3_bytes_per_sig"], f"-{live['bytes_reduction']:.1%}"],
         ["live CPU s/sig", live["v2_cpu_s_per_sig"],
          live["v3_cpu_s_per_sig"],
          f"-{live['cpu_saved_s_per_sig'] * 1e6:.0f} us (median "
          f"paired)"]],
        title=f"Wire efficiency, v2 JSON lines vs v3 binary frames "
              f"({MESSAGES} msgs x {MESSAGE_BYTES} B, batch {BATCH}, "
              f"warm vectorized)",
    ))
