"""Figure 11: FORS_Sign optimization ladder — Baseline -> MMTP -> +FS ->
+PTX -> +HybridME -> +FreeBank, step and cumulative speedups."""

from repro.analysis import PAPER, format_table
from repro.analysis.reporting import shape_check
from repro.core.pipeline import optimization_ladder
from repro.params import get_params


def test_fig11_fors_steps(rtx4090, engine, emit, benchmark):
    ladders = benchmark(lambda: {
        alias: optimization_ladder(get_params(alias), rtx4090, engine=engine)
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, steps in ladders.items():
        paper = PAPER["fig11_fors_steps_kops"][alias]
        paper_base = paper["Baseline"]
        for step in steps:
            rows.append([
                alias, step.name,
                paper[step.name], round(step.kops, 1),
                f"{paper[step.name] / paper_base:.2f}x",
                f"{step.cumulative_speedup:.2f}x",
                f"{step.step_speedup:.2f}x",
            ])
    emit("fig11_fors_steps", format_table(
        ["set", "step", "KOPS (paper)", "KOPS (model)",
         "cumulative (paper)", "cumulative (model)", "step (model)"],
        rows,
        title="Figure 11 — FORS_Sign optimization steps (block = 1024, RTX 4090)",
    ))

    for alias, steps in ladders.items():
        paper = PAPER["fig11_fors_steps_kops"][alias]
        # No step regresses, cumulative within +-50% of the paper's.
        for step in steps[1:]:
            assert step.step_speedup >= 0.99, f"{alias}/{step.name}"
        paper_cum = paper["+FreeBank"] / paper["Baseline"]
        shape_check(steps[-1].cumulative_speedup, paper_cum, 0.5,
                    label=f"fig11 cumulative {alias}")
        shape_check(steps[0].kops, paper["Baseline"], 1.0,
                    label=f"fig11 baseline {alias}")
