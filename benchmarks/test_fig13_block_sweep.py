"""Figure 13: sensitivity to block (batch) size 2..1024 — baseline vs
HERO-Sign (with graph) throughput and speedup."""

from repro.analysis import PAPER, format_table
from repro.core.batch import run_batch
from repro.params import get_params

SIZES = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _sweep(params, device, engine):
    out = []
    for size in SIZES:
        base = run_batch(params, device, "baseline", messages=size,
                         batches=1, engine=engine)
        hero = run_batch(params, device, "graph", messages=size,
                         batches=min(8, size), engine=engine)
        out.append((size, base.kops, hero.kops, hero.kops / base.kops))
    return out


def test_fig13_block_sweep(rtx4090, engine, emit, benchmark):
    sweeps = benchmark(lambda: {
        alias: _sweep(get_params(alias), rtx4090, engine)
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, sweep in sweeps.items():
        for size, base, hero, speedup in sweep:
            rows.append([alias, size, round(base, 2), round(hero, 2),
                         f"{speedup:.2f}x"])
    emit("fig13_block_sweep", format_table(
        ["set", "block size", "baseline KOPS", "HERO KOPS", "speedup"],
        rows,
        title="Figure 13 — block-size sensitivity (RTX 4090, graph mode)",
    ))

    for alias, sweep in sweeps.items():
        speedups = {size: s for size, _, _, s in sweep}
        paper_small, paper_large = PAPER["fig13_speedup_range"][alias]
        # Paper shape: HERO-Sign wins at every block size, with the
        # full-block speedup in the paper's 1.28-1.42x neighbourhood.
        # The model reproduces the decreasing small-block trend for
        # 128f/192f; at 256f the Relax-FORS advantage needs occupancy, so
        # the model's trend flattens (under-reproduced small-block
        # magnitude — see EXPERIMENTS.md).
        assert all(s > 1.1 for s in speedups.values()), alias
        assert 1.05 <= speedups[1024] <= 2.0
        if alias in ("128f", "192f"):
            assert speedups[2] > speedups[1024]
        # Throughput itself grows with block size for HERO.
        hero_kops = [h for _, _, h, _ in sweep]
        assert hero_kops[-1] > hero_kops[0]
