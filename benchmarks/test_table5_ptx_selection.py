"""Table V: profiling-driven PTX/native selection per kernel per set."""

from repro.analysis import PAPER, format_table
from repro.core.branch_select import select_branches
from repro.core.kernels import OptimizationFlags, build_plans
from repro.gpusim.compiler import Branch
from repro.params import get_params

BRANCHES = {k: Branch.NATIVE for k in ("FORS_Sign", "TREE_Sign", "WOTS_Sign")}


def _select_all(rtx4090, engine):
    out = {}
    for alias in ("128f", "192f", "256f"):
        plans = build_plans(get_params(alias), rtx4090,
                            OptimizationFlags.full(), branches=BRANCHES)
        out[alias] = select_branches(plans, engine)
    return out


def test_table5_ptx_selection(rtx4090, engine, emit, benchmark):
    selections = benchmark(_select_all, rtx4090, engine)

    def mark(flag):
        return "PTX" if flag else "native"

    rows = []
    for alias, choices in selections.items():
        paper = PAPER["table5_ptx_selection"][alias]
        for kernel in ("FORS_Sign", "TREE_Sign", "WOTS_Sign"):
            choice = choices[kernel]
            rows.append([
                f"SPHINCS+-{alias}", kernel,
                mark(paper[kernel]), mark(choice.ptx_selected),
                round(choice.speedup, 3),
            ])
    emit("table5_ptx_selection", format_table(
        ["parameter set", "kernel", "paper pick", "model pick",
         "winner speedup"],
        rows,
        title="Table V — PTX branch selection (block = 1024, RTX 4090)",
    ))

    for alias, choices in selections.items():
        for kernel, want in PAPER["table5_ptx_selection"][alias].items():
            assert choices[kernel].ptx_selected == want, f"{alias}/{kernel}"
