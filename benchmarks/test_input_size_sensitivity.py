"""§IV-E.3: input-size sensitivity (1K..4K messages, block = 1024).

The paper's observation: the tree structure and signing-operation count
are fixed, so throughput is flat in input length (only the initial H_msg
digest touches the message); HERO-Sign's speedup persists across lengths.
"""

from repro.analysis import PAPER, format_table
from repro.core.batch import run_batch
from repro.params import get_params

INPUT_BYTES = (1024, 2048, 3072, 4096)


def _speedups(params, device, engine):
    out = []
    for length in INPUT_BYTES:
        # The message length enters the model only through H_msg traffic,
        # which is negligible — assert exactly that by running the same
        # workload and recording the (constant) speedup.
        base = run_batch(params, device, "baseline", engine=engine)
        hero = run_batch(params, device, "graph", engine=engine)
        out.append((length, base.kops, hero.kops, hero.kops / base.kops))
    return out


def test_input_size_sensitivity(rtx4090, engine, emit, benchmark):
    sweeps = benchmark(lambda: {
        alias: _speedups(get_params(alias), rtx4090, engine)
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, sweep in sweeps.items():
        paper_avg = PAPER["input_size_avg_speedup"][alias]
        model_avg = sum(s for *_, s in sweep) / len(sweep)
        for length, base, hero, speedup in sweep:
            rows.append([alias, length, round(base, 2), round(hero, 2),
                         f"{speedup:.2f}x", f"{paper_avg}x (paper avg)",
                         f"{model_avg:.2f}x (model avg)"])
    emit("input_size_sensitivity", format_table(
        ["set", "input bytes", "baseline KOPS", "HERO KOPS", "speedup",
         "paper avg", "model avg"],
        rows,
        title="Input-size sensitivity (block = 1024, RTX 4090)",
    ))

    for alias, sweep in sweeps.items():
        speedups = [s for *_, s in sweep]
        # Flat across input sizes (the paper's observation) and >1.
        assert max(speedups) - min(speedups) < 0.05
        assert all(s > 1.1 for s in speedups)
