"""Table IX: cross-platform comparison — HERO-Sign (modeled RTX 4090)
against published FPGA and ASIC implementations.

The comparators are literature constants (the paper cites them); the
HERO-Sign column is this model's end-to-end graph-mode throughput, plus
power-per-signature derived from the device TDP.
"""

from repro.analysis import PAPER, format_table
from repro.core.batch import run_batch
from repro.params import get_params


def _hero_rows(rtx4090, engine):
    out = {}
    for alias in ("128f", "192f", "256f"):
        result = run_batch(get_params(alias), rtx4090, "graph", engine=engine)
        kops = result.kops
        pps = rtx4090.tdp_watts / (kops * 1e3)  # joules (W·s) per signature
        out[alias] = (kops, pps)
    return out


def test_table9_cross_platform(rtx4090, engine, emit, benchmark):
    hero = benchmark(_hero_rows, rtx4090, engine)
    paper = PAPER["table9_cross_platform"]

    rows = []
    for alias in ("128f", "192f", "256f"):
        kops, pps = hero[alias]
        rows.append([
            f"SPHINCS+-{alias}",
            paper["herosign_rtx4090_kops"][alias], round(kops, 2),
            round(pps, 4),
            paper["berthet_fpga_kops"].get(alias, "n/a"),
            paper["amiet_fpga_kops"][alias],
            paper["sphincslet_asic_kops"][alias],
        ])
    emit("table9_cross_platform", format_table(
        ["variant", "HERO KOPS (paper)", "HERO KOPS (model)",
         "PPS W·s (model)", "Berthet FPGA", "Amiet FPGA", "SPHINCSLET ASIC"],
        rows,
        title="Table IX — cross-platform throughput (KOPS)",
    ))

    # Shape: the GPU wins by orders of magnitude over every comparator.
    for alias in ("128f", "192f", "256f"):
        kops, _ = hero[alias]
        assert kops > 50 * paper["amiet_fpga_kops"][alias]
        assert kops > 100 * paper["sphincslet_asic_kops"][alias]
    # Paper's headline vs Amiet: 120.68x / 76.98x / 84.70x — require the
    # model's ratios in the tens-to-hundreds range.
    ratio_128 = hero["128f"][0] / paper["amiet_fpga_kops"]["128f"]
    assert 40 <= ratio_128 <= 250
