"""Observability overhead — tracing on vs off on the warm vectorized path.

The tracing acceptance bar: with a tracer attached, the local facade and
batch scheduler record a root span plus per-stage sub-spans for every
batch, and that bookkeeping must cost at most a few percent of warm
vectorized signing throughput.  Two deterministic clients — one with a
ring-only :class:`Tracer`, one without — sign the same warm batch in
*interleaved* rounds, so slow clock drift on a shared box hits both
sides equally; the overhead is the median per-round ratio, which a
single noisy round cannot move.  The result is pinned as a JSON
baseline so a future PR that fattens the hot-path hooks shows up in the
perf gate.

The signatures from both runs are also compared byte-for-byte: tracing
must observe signing, never perturb it.
"""

import json
import statistics
import time

from conftest import SMOKE, json_baseline_dir

from repro.api import LocalClient
from repro.obs import Tracer

BATCH = 2 if SMOKE else 6
# Interleaved (off, on) rounds; the median ratio damps both outliers and
# drift.  Warm batches land around 10-40 ms, so this stays quick.
ROUNDS = 8 if SMOKE else 12

#: Acceptance: tracing may cost at most this fraction of warm throughput.
MAX_OVERHEAD = 0.05


def _client(tracer):
    client = LocalClient(deterministic=True, tracer=tracer)
    client.add_tenant("bench")
    return client


def _measure(plain, traced, messages, rounds):
    """Interleaved rounds; returns (median overhead, off_s, on_s)."""
    off_times, on_times = [], []
    for _ in range(rounds):
        started = time.perf_counter()
        plain.sign_many("bench", messages)
        off_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        traced.sign_many("bench", messages)
        on_times.append(time.perf_counter() - started)
    overhead = statistics.median(
        on / off for on, off in zip(on_times, off_times)) - 1.0
    return (overhead, statistics.median(off_times),
            statistics.median(on_times))


def test_tracing_overhead_on_warm_vectorized_path(emit):
    messages = [f"overhead probe {i}".encode() for i in range(BATCH)]
    tracer = Tracer()  # ring only: the hot path's honest worst case
    plain = _client(None)
    traced = _client(tracer)
    try:
        off_sigs = [r.signature for r
                    in plain.sign_many("bench", messages)]  # warm-up
        on_sigs = [r.signature for r
                   in traced.sign_many("bench", messages)]
        # Tracing is an observer: byte-identical output, spans aside.
        assert on_sigs == off_sigs

        rounds = ROUNDS
        overhead, off_s, on_s = _measure(plain, traced, messages, rounds)
        if overhead > MAX_OVERHEAD:
            # The per-round noise on a shared box exceeds the real span
            # cost by an order of magnitude; before declaring a
            # regression, demand it reproduce at double the sample size.
            rounds = 2 * ROUNDS
            overhead, off_s, on_s = _measure(plain, traced, messages,
                                             rounds)
    finally:
        plain.close()
        traced.close()

    assert tracer.recorded > 0
    names = {span.name for span in tracer.spans()}
    assert {"client-request", "sign"} <= names

    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(median off {off_s * 1000:.1f} ms, on {on_s * 1000:.1f} ms; "
        f"{rounds} rounds)"
    )
    record = {
        "smoke": SMOKE,
        "backend": "vectorized",
        "params": "SPHINCS+-128f",
        "batch": BATCH,
        "rounds": rounds,
        "sigs_per_s": {
            "tracing_off": round(BATCH / off_s, 4),
            "tracing_on": round(BATCH / on_s, 4),
        },
        # Clamped at zero: timer noise can make the traced side measure
        # faster, and a negative pin would only add gate noise.
        "overhead_fraction": round(max(overhead, 0.0), 4),
        "max_overhead": MAX_OVERHEAD,
        # Warm-up + every measured round (including an escalation pass)
        # ran on the traced client.
        "spans_per_batch": tracer.recorded // (
            1 + rounds + (ROUNDS if rounds != ROUNDS else 0)),
    }
    (json_baseline_dir() / "obs_overhead.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("obs_overhead", format_table(
        ["config", "median batch ms", "sigs/s"],
        [["tracing off", round(off_s * 1000, 1),
          record["sigs_per_s"]["tracing_off"]],
         ["tracing on", round(on_s * 1000, 1),
          record["sigs_per_s"]["tracing_on"]]],
        title=f"Tracing overhead, warm vectorized batch={BATCH}, "
              f"{rounds} interleaved rounds "
              f"(measured {overhead:+.2%}, budget {MAX_OVERHEAD:.0%})",
    ))
