"""Table XI: average compilation time, baseline vs HERO-Sign's
compile-time branching (constexpr-if specialization + PTX branches)."""

import pytest

from repro.analysis import PAPER, format_table
from repro.gpusim.compile_time import CompileTimeModel
from repro.gpusim.compiler import Branch
from repro.params import get_params

SELECTIONS = {
    "128f": {"FORS_Sign": Branch.PTX},
    "192f": {"FORS_Sign": Branch.PTX},
    "256f": {"FORS_Sign": Branch.PTX, "TREE_Sign": Branch.PTX,
             "WOTS_Sign": Branch.PTX},
}


def test_table11_compile_time(emit, benchmark):
    model = CompileTimeModel()
    reports = benchmark(lambda: {
        alias: model.report(get_params(alias), SELECTIONS[alias])
        for alias in SELECTIONS
    })

    rows = []
    for alias, report in reports.items():
        paper = PAPER["table11_compile_s"][alias]
        rows.append([
            f"SPHINCS+-{alias}",
            paper["baseline"], round(report.baseline_s, 2),
            paper["herosign"], round(report.herosign_s, 2),
            f"{paper['baseline'] / paper['herosign']:.2f}x",
            f"{report.speedup:.2f}x",
        ])
    emit("table11_compile_time", format_table(
        ["parameter set", "baseline s (paper)", "baseline s (model)",
         "HERO s (paper)", "HERO s (model)", "speedup (paper)",
         "speedup (model)"],
        rows,
        title="Table XI — average compilation time (block sizes 2..1024)",
    ))

    for alias, report in reports.items():
        paper = PAPER["table11_compile_s"][alias]
        assert report.baseline_s == pytest.approx(paper["baseline"], rel=0.03)
        assert report.speedup > 1.0
        assert report.herosign_s == pytest.approx(paper["herosign"], rel=0.25)
