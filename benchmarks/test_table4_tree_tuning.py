"""Table IV: Tree Tuning search results (static 48 KB shared memory).

This table reproduces *exactly*: the search is deterministic and the paper
publishes its outputs for 128f and 192f.
"""

from repro.analysis import PAPER, format_table
from repro.core.tree_tuning import tree_tuning_search
from repro.params import get_params

SMEM = 48 * 1024


def test_table4_tree_tuning(emit, benchmark):
    results = benchmark(lambda: {
        alias: tree_tuning_search(get_params(alias), SMEM)
        for alias in ("128f", "192f")
    })

    rows = []
    for alias, result in results.items():
        paper = PAPER["table4_tuning"][alias]
        best = result.best
        rows.append([
            f"SPHINCS+-{alias}",
            paper["smem_util"], round(best.u_s, 4),
            paper["thread_util"], round(best.u_t, 4),
            paper["F"], best.f,
            best.t_set, len(result.candidates),
        ])
    emit("table4_tree_tuning", format_table(
        ["parameter set", "smem util (paper)", "smem util (model)",
         "thread util (paper)", "thread util (model)",
         "F (paper)", "F (model)", "T_set", "candidates"],
        rows,
        title="Table IV — Auto Tree Tuning results (48 KB static, RTX 4090)",
    ))

    for alias, result in results.items():
        paper = PAPER["table4_tuning"][alias]
        assert result.best.f == paper["F"]
        assert abs(result.best.u_s - paper["smem_util"]) < 1e-9
        assert abs(result.best.u_t - paper["thread_util"]) < 1e-9
