"""Figure 12: end-to-end throughput (KOPS) and kernel launch latency (us)
across the four execution strategies, plus the block-size-sweep launch
latency total that matches the paper's Nsight aggregation.
"""

from repro.analysis import PAPER, format_table
from repro.core.batch import MODES, end_to_end_kops, run_batch
from repro.params import get_params

SWEEP_SIZES = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _sweep_latency(params, device, engine, mode):
    """Total launch latency across the block-size sweep — the paper's
    measurement aggregates its Nsight traces over the experiment sweep."""
    total = 0.0
    for size in SWEEP_SIZES:
        # One batch per run: the latency-optimal configuration (a single
        # instantiated graph covering the workload) that the paper's
        # launch-latency measurement reflects.
        result = run_batch(params, device, mode, messages=size,
                           batches=1, engine=engine)
        total += result.launch_latency_us
    return total


def test_fig12_performance(rtx4090, engine, emit, benchmark):
    results = benchmark(lambda: {
        alias: end_to_end_kops(get_params(alias), rtx4090, engine=engine)
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, modes in results.items():
        paper = PAPER["fig12_e2e_kops"][alias]
        for mode in MODES:
            rows.append([
                alias, mode, paper[mode], round(modes[mode].kops, 2),
                round(modes[mode].launch_latency_us, 1),
            ])
    emit("fig12_e2e_performance", format_table(
        ["set", "mode", "KOPS (paper)", "KOPS (model)",
         "launch latency us (model, one workload)"],
        rows,
        title="Figure 12 — end-to-end performance (1024 messages, RTX 4090)",
    ))

    for alias, modes in results.items():
        assert modes["baseline"].kops < modes["baseline-graph"].kops
        assert modes["baseline"].kops < modes["streams"].kops
        assert modes["baseline-graph"].kops < modes["graph"].kops
        speedup = modes["graph"].kops / modes["baseline"].kops
        assert 1.1 <= speedup <= 2.0


def test_fig12_launch_latency_sweep(rtx4090, engine, emit, benchmark):
    rows = []
    reductions = {}
    latencies = benchmark(lambda: {
        alias: {
            mode: _sweep_latency(get_params(alias), rtx4090, engine, mode)
            for mode in ("baseline", "streams", "graph")
        }
        for alias in ("128f", "192f", "256f")
    })
    for alias in ("128f", "192f", "256f"):
        paper = PAPER["fig12_launch_latency_us"][alias]
        lat = latencies[alias]
        reductions[alias] = lat["baseline"] / lat["graph"]
        rows.append([
            alias,
            paper["baseline"], round(lat["baseline"], 1),
            paper["streams"], round(lat["streams"], 1),
            paper["graph"], round(lat["graph"], 1),
            f"{reductions[alias]:.1f}x",
        ])
    emit("fig12_launch_latency", format_table(
        ["set", "baseline us (paper)", "baseline us (model)",
         "streams us (paper)", "streams us (model)",
         "graph us (paper)", "graph us (model)", "reduction (model)"],
        rows,
        title="Figure 12 — kernel launch latency, summed over the "
              "block-size sweep 2..1024",
    ))

    # The paper's headline: graphs cut launch latency by up to two orders
    # of magnitude (86x-221x).  Require >= 40x in the model.
    for alias, reduction in reductions.items():
        assert reduction >= 40, f"{alias}: only {reduction:.0f}x"
