"""Table VI: shared-memory bank conflicts during the Merkle reduction,
baseline (packed) vs the Eq. 2/3 padded layout.

The model replays the exact reduction access trace of one signing
operation's FORS and TREE reductions.  Absolute counts depend on Nsight's
counter scope (the paper's numbers aggregate an unknown repeat factor), so
the asserted shape is the paper's: packed layouts conflict heavily, padded
layouts are conflict-free.
"""

from repro.analysis import PAPER, format_table
from repro.core.padding import padding_rule
from repro.gpusim.memory import count_multi_tree_conflicts, count_reduction_conflicts
from repro.params import get_params


def _conflicts(alias):
    params = get_params(alias)
    period = padding_rule(params.n).pad_period
    out = {}
    # FORS_Sign: k trees of t leaves; TREE_Sign: d trees of 2^(h/d) leaves.
    out["FORS_Sign"] = {
        "baseline": count_reduction_conflicts(
            params.t, params.n, 0, repeats=params.k),
        "padded": count_reduction_conflicts(
            params.t, params.n, period, repeats=params.k),
    }
    # The d hypertree subtrees reduce side by side in shared warps.
    out["TREE_Sign"] = {
        "baseline": count_multi_tree_conflicts(
            params.d, params.tree_leaves, params.n, 0),
        "padded": count_multi_tree_conflicts(
            params.d, params.tree_leaves, params.n, period),
    }
    return out


def test_table6_bank_conflicts(emit, benchmark):
    measured = benchmark(
        lambda: {alias: _conflicts(alias) for alias in ("128f", "192f", "256f")}
    )

    rows = []
    for alias, kernels in measured.items():
        paper = PAPER["table6_bank_conflicts"][alias]
        for kernel, reports in kernels.items():
            pb, pp = paper[kernel]["baseline"], paper[kernel]["padded"]
            base, padded = reports["baseline"], reports["padded"]
            rows.append([
                f"SPHINCS+-{alias}", kernel,
                f"{pb[0]:,}/{pb[1]:,}",
                f"{base.load_conflicts:,}/{base.store_conflicts:,}",
                f"{pp[0]}/{pp[1]}",
                f"{padded.load_conflicts}/{padded.store_conflicts}",
            ])
    emit("table6_bank_conflicts", format_table(
        ["parameter set", "kernel", "paper packed (ld/st)",
         "model packed (ld/st)", "paper padded", "model padded"],
        rows,
        title="Table VI — reduction bank conflicts, packed vs Eq. 2/3 padding",
    ))

    for alias, kernels in measured.items():
        for kernel, reports in kernels.items():
            assert reports["baseline"].total_conflicts > 0, f"{alias}/{kernel}"
            assert reports["padded"].total_conflicts == 0, f"{alias}/{kernel}"
