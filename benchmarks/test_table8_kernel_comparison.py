"""Table VIII: per-kernel comparison, baseline vs HERO-Sign (block = 1024):
KOPS, occupancy, compute throughput, memory throughput."""

from repro.analysis import PAPER, format_table
from repro.analysis.reporting import shape_check
from repro.core.pipeline import kernel_comparison
from repro.params import get_params


def test_table8_kernel_comparison(rtx4090, engine, emit, benchmark):
    comparisons = benchmark(lambda: {
        alias: kernel_comparison(get_params(alias), rtx4090, engine)
        for alias in ("128f", "192f", "256f")
    })

    rows = []
    for alias, cmp in comparisons.items():
        paper_set = PAPER["table8_kernels"][alias]
        for kernel, (base, hero) in cmp.items():
            paper = paper_set[kernel]
            rows.append([
                f"{alias}", kernel,
                f"{paper['kops'][0]}/{paper['kops'][1]}",
                f"{base.kops:.1f}/{hero.kops:.1f}",
                f"{paper['kops'][1] / paper['kops'][0]:.2f}x",
                f"{hero.kops / base.kops:.2f}x",
                f"{base.profile.warp_occupancy_pct:.1f}->"
                f"{hero.profile.warp_occupancy_pct:.1f}",
                f"{base.profile.compute_throughput_pct:.1f}->"
                f"{hero.profile.compute_throughput_pct:.1f}",
            ])
    emit("table8_kernel_comparison", format_table(
        ["set", "kernel", "KOPS paper (base/hero)", "KOPS model (base/hero)",
         "speedup paper", "speedup model", "occ % model", "compute % model"],
        rows,
        title="Table VIII — kernel performance, baseline vs HERO-Sign "
              "(block = 1024, RTX 4090)",
    ))

    for alias, cmp in comparisons.items():
        for kernel, (base, hero) in cmp.items():
            paper = PAPER["table8_kernels"][alias][kernel]["kops"]
            assert hero.kops > base.kops
            shape_check(hero.kops / base.kops, paper[1] / paper[0], 0.4,
                        label=f"speedup {alias}/{kernel}")
