"""Ledger pipeline throughput — the transparency-log tier's baseline.

Not a paper table: a fixed stream of events is appended through a real
:class:`~repro.ledger.LedgerService` (batched ``sign_many`` seals over a
deterministic 128f tenant), then every acknowledged receipt's inclusion
proof is generated and verified, and finally the differential audit
replays the on-disk bytes.  Three rates are recorded as
``ledger_throughput.json`` next to the other baselines:

* ``append.appends_per_s`` — acknowledged appends per second, the write
  path including Merkle sealing, checkpoint signing, and fsync.
* ``proofs.proofs_per_s`` — inclusion proofs generated *and* verified
  per second, the read path a monitor exercises.
* ``audit.entries_per_s`` — audited entries per second for the full
  replay (signature verification plus deterministic byte-compare).

The run also asserts the pipeline invariant outright: every receipt must
verify and the audit must come back clean — a throughput number measured
over unverifiable entries would be meaningless.  Set ``REPRO_SMOKE=1``
for the tiny CI configuration.
"""

import asyncio
import json
import os
import time

from conftest import SMOKE, json_baseline_dir

from repro.api import LocalClient, verify_inclusion
from repro.ledger import LedgerService, run_audit
from repro.params import get_params
from repro.service import Keystore, derive_seed

PARAMS = "128f"
TENANT = "ledger-bench"
ENTRIES = 4 if SMOKE else 12
BATCH_SIZE = 2 if SMOKE else 4


def _keystore() -> Keystore:
    store = Keystore()
    store.add_tenant(TENANT, PARAMS)
    store.generate_key(TENANT, "default",
                       seed=derive_seed(f"{TENANT}/default",
                                        get_params(PARAMS).n))
    return store


async def _append_phase(ledger: LedgerService) -> tuple[list, dict]:
    events = [f"ledger-bench event {i}".encode() for i in range(ENTRIES)]
    started = time.perf_counter()
    receipts = await ledger.append_many(events)
    elapsed = time.perf_counter() - started
    assert len(receipts) == ENTRIES
    return receipts, {
        "entries": ENTRIES,
        "batch_size": BATCH_SIZE,
        "elapsed_s": round(elapsed, 4),
        "appends_per_s": round(ENTRIES / elapsed, 4),
    }


def _proof_phase(ledger: LedgerService, client: LocalClient,
                 receipts: list) -> dict:
    size = receipts[-1].checkpoint.size
    started = time.perf_counter()
    for receipt in receipts:
        proof = ledger.prove(receipt.index, size)
        assert verify_inclusion(client, proof), (
            f"receipt {receipt.index} failed inclusion — invariant broken"
        )
    elapsed = time.perf_counter() - started
    return {
        "verified": len(receipts),
        "elapsed_s": round(elapsed, 4),
        "proofs_per_s": round(len(receipts) / elapsed, 4),
    }


def _audit_phase(root, keystore: Keystore) -> dict:
    started = time.perf_counter()
    report = run_audit(root, keystore, tenant=TENANT, deterministic=True)
    elapsed = time.perf_counter() - started
    assert report["ok"], report["problems"]
    assert report["entries_verified"] == ENTRIES
    assert report["signatures_matched"] == report["checkpoints"]
    return {
        "entries_verified": report["entries_verified"],
        "checkpoints_verified": report["checkpoints_verified"],
        "elapsed_s": round(elapsed, 4),
        "entries_per_s": round(report["entries_verified"] / elapsed, 4),
    }


def test_ledger_throughput(emit, tmp_path):
    keystore = _keystore()
    client = LocalClient(keystore, backend="vectorized",
                         deterministic=True)
    root = tmp_path / "log"

    async def scenario():
        ledger = LedgerService(client, tenant=TENANT, root=root,
                               batch_size=BATCH_SIZE, max_wait_ms=10.0)
        receipts, append = await _append_phase(ledger)
        await ledger.close()
        return ledger, receipts, append

    try:
        ledger, receipts, append = asyncio.run(scenario())
        proofs = _proof_phase(ledger, client, receipts)
    finally:
        client.close()
    audit = _audit_phase(root, keystore)

    record = {
        "params": f"SPHINCS+-{PARAMS}",
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "append": append,
        "proofs": proofs,
        "audit": audit,
    }
    (json_baseline_dir() / "ledger_throughput.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("ledger_throughput", format_table(
        ["phase", "items", "wall s", "items/s"],
        [["append", append["entries"], append["elapsed_s"],
          append["appends_per_s"]],
         ["prove+verify", proofs["verified"], proofs["elapsed_s"],
          proofs["proofs_per_s"]],
         ["audit replay", audit["entries_verified"], audit["elapsed_s"],
          audit["entries_per_s"]]],
        title=(f"Ledger pipeline, {ENTRIES} entries sealed in batches of "
               f"{BATCH_SIZE}, {os.cpu_count()} CPU core(s)"),
    ))
