"""Figure 14: baseline vs HERO-Sign (with graph) across GPU architectures
(Pascal, Volta, Turing, Ampere, Hopper — plus the RTX 4090 reference)."""

from repro.analysis import PAPER, format_table
from repro.core.batch import run_batch
from repro.gpusim.device import get_device
from repro.params import get_params

ARCHES = {
    "Pascal": "GTX 1070",
    "Volta": "V100",
    "Turing": "RTX 2080 Ti",
    "Ampere": "A100",
    "Ada": "RTX 4090",
    "Hopper": "H100",
}


def _run(engine):
    out = {}
    for arch, device_name in ARCHES.items():
        device = get_device(device_name)
        out[arch] = {}
        for alias in ("128f", "192f", "256f"):
            params = get_params(alias)
            base = run_batch(params, device, "baseline", engine=engine)
            hero = run_batch(params, device, "graph", engine=engine)
            out[arch][alias] = (base.kops, hero.kops)
    return out


def test_fig14_architectures(engine, emit, benchmark):
    results = benchmark(_run, engine)

    rows = []
    for arch, sets in results.items():
        for alias, (base, hero) in sets.items():
            paper_speedup = PAPER["fig14_speedups"].get(arch, {}).get(alias)
            rows.append([
                arch, alias, round(base, 2), round(hero, 2),
                f"{hero / base:.2f}x",
                f"{paper_speedup}x" if paper_speedup else "n/a (reference)",
            ])
    emit("fig14_architectures", format_table(
        ["architecture", "set", "baseline KOPS", "HERO KOPS",
         "speedup (model)", "speedup (paper)"],
        rows,
        title="Figure 14 — cross-architecture comparison (block = 1024)",
    ))

    # Shape assertions from the paper's §IV-F discussion.
    for alias in ("128f", "192f", "256f"):
        # HERO-Sign wins on every architecture.
        for arch in ARCHES:
            base, hero = results[arch][alias]
            assert hero > base, f"{arch}/{alias}"
        # RTX 4090 delivers the highest absolute throughput.
        ada = results["Ada"][alias][1]
        for arch in ("Pascal", "Volta", "Turing", "Hopper"):
            assert ada > results[arch][alias][1], f"{arch}/{alias}"
    # Pascal has the lowest absolute throughput of all architectures.
    for alias in ("128f", "192f", "256f"):
        pascal = results["Pascal"][alias][1]
        for arch in ARCHES:
            if arch != "Pascal":
                assert results[arch][alias][1] > pascal
