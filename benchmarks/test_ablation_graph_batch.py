"""Ablation: batch count vs throughput and launch latency in graph mode
(DESIGN.md ablation #3; paper §III-F explores "appropriate batch sizes").
"""

from repro.analysis import format_table
from repro.core.batch import run_batch
from repro.params import get_params

BATCH_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def test_ablation_graph_batch(rtx4090, engine, emit, benchmark):
    params = get_params("128f")
    results = benchmark(lambda: {
        batches: run_batch(params, rtx4090, "graph", messages=1024,
                           batches=batches, engine=engine)
        for batches in BATCH_COUNTS
    })

    rows = [
        [batches, round(r.kops, 2), round(r.launch_latency_us, 2),
         round(r.gpu_idle_s * 1e6, 1)]
        for batches, r in results.items()
    ]
    emit("ablation_graph_batch", format_table(
        ["graphs (batches)", "KOPS", "launch latency us", "idle us"],
        rows,
        title="Ablation — graph count vs throughput, 1024 messages of "
              "SPHINCS+-128f",
    ))

    kops = {b: r.kops for b, r in results.items()}
    latency = {b: r.launch_latency_us for b, r in results.items()}
    # Throughput is insensitive to the split (machine-seconds conserve)...
    assert max(kops.values()) / min(kops.values()) < 1.3
    # ...but launch latency grows with graph count (one launch per graph),
    # the trade-off behind the paper's "appropriate batch sizes".
    assert latency[64] > latency[1]
