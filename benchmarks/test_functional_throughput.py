"""Real (wall-clock) throughput of the functional pure-Python SPHINCS+.

Not a paper table — this grounds the repository: the numbers here are
honest Python measurements (pytest-benchmark), establishing the baseline
the GPU model's orders-of-magnitude speedups are claimed over.
"""

import pytest

from repro.analysis import format_table
from repro.sphincs.signer import Sphincs


@pytest.fixture(scope="module")
def scheme():
    return Sphincs("128f", deterministic=True)


@pytest.fixture(scope="module")
def keys(scheme):
    return scheme.keygen(seed=bytes(48))


def test_sign_128f(scheme, keys, benchmark, emit):
    sig = benchmark(scheme.sign, b"functional throughput", keys)
    assert len(sig) == 17088
    stats = benchmark.stats.stats
    emit("functional_throughput", format_table(
        ["operation", "mean s", "ops/s"],
        [["sign 128f (pure Python)", round(stats.mean, 4),
          round(1.0 / stats.mean, 3)]],
        title="Functional layer wall-clock throughput",
    ))


def test_verify_128f(scheme, keys, benchmark):
    sig = scheme.sign(b"functional throughput", keys)
    ok = benchmark(scheme.verify, b"functional throughput", sig, keys.public)
    assert ok


def test_keygen_128f(scheme, benchmark):
    keys = benchmark(scheme.keygen, seed=bytes(48))
    assert len(keys.public) == 32
