#!/usr/bin/env python
"""CI perf-regression gate: diff measured baselines against pinned ones.

The JSON perf baselines (``backend_throughput.json``,
``service_latency.json``, ``pool_scaling.json``,
``obs_overhead.json``, ``wire_efficiency.json``,
``cluster_scaling.json``, ``ledger_throughput.json``) live under
``benchmarks/results/`` (full mode) and ``benchmarks/results/smoke/``
(``REPRO_SMOKE=1`` mode) and are committed to the repository.  Running
the benchmarks rewrites the mode's files in the working tree; this
script then compares every watched metric in the freshly measured files
against the *pinned* (committed) copies and exits non-zero naming each
metric that regressed beyond the tolerance.

Modes are compared like-for-like — a smoke measurement is only ever
diffed against the pinned smoke baseline — so the CI gate can run the
cheap smoke configuration on every push without comparing apples to the
full-mode numbers.

Usage::

    REPRO_SMOKE=1 python -m pytest benchmarks/test_backend_throughput.py \
        benchmarks/test_service_latency.py benchmarks/test_pool_scaling.py \
        benchmarks/test_obs_overhead.py benchmarks/test_wire_efficiency.py \
        benchmarks/test_cluster_scaling.py -q
    REPRO_SMOKE=1 python benchmarks/compare_baselines.py [--tolerance 0.25]

    python benchmarks/compare_baselines.py --self-check
        # injects a fake regression into the measured numbers and exits 0
        # only if the gate catches it (the fault-injection pattern: prove
        # the alarm rings before trusting its silence)

    python benchmarks/compare_baselines.py --regen-baselines
        # re-runs the watched benchmarks to refresh this mode's
        # pinned files in place (commit the result), mirroring --regen-kats

By default the pinned copy is read from ``git show HEAD:<path>`` so the
comparison works even after the benchmarks have overwritten the working
tree; pass ``--baseline-dir`` to diff against a directory instead.

Exit codes: 0 clean, 1 regression (or self-check alarm failure),
2 misconfiguration (missing files, not a git checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"

#: The benchmark files that (re)generate each baseline.
BASELINE_SOURCES = {
    "backend_throughput.json": "test_backend_throughput.py",
    "service_latency.json": "test_service_latency.py",
    "pool_scaling.json": "test_pool_scaling.py",
    "obs_overhead.json": "test_obs_overhead.py",
    "wire_efficiency.json": "test_wire_efficiency.py",
    "cluster_scaling.json": "test_cluster_scaling.py",
    "ledger_throughput.json": "test_ledger_throughput.py",
}


def verify_command(filename: str) -> str:
    """The exact invocation that (re)generates *filename*'s baseline.

    ``pyproject.toml`` configures ``pythonpath = ["src"]`` for pytest,
    so the command needs no ``PYTHONPATH`` prefix — only the smoke flag
    when this gate is running in smoke mode.  Printed verbatim in the
    "run its benchmark first" misconfiguration path so a dev outside CI
    can copy-paste it.
    """
    env = "REPRO_SMOKE=1 " if smoke_mode() else ""
    return f"{env}python -m pytest benchmarks/{BASELINE_SOURCES[filename]} -q"


@dataclass(frozen=True)
class Metric:
    """One watched number inside a baseline file."""

    path: tuple[str, ...]   # key path into the JSON record
    higher_is_better: bool
    optional: bool = False  # absent in some configurations (no 4w config)

    @property
    def name(self) -> str:
        return ".".join(self.path)


WATCHED: dict[str, list[Metric]] = {
    "backend_throughput.json": [
        Metric(("speedup",), higher_is_better=True),
        Metric(("scalar", "sigs_per_s"), higher_is_better=True),
        Metric(("vectorized", "sigs_per_s"), higher_is_better=True),
        Metric(("warm", "sigs_per_s"), higher_is_better=True,
               optional=True),
        Metric(("warm", "speedup_vs_cold"), higher_is_better=True,
               optional=True),
    ],
    "service_latency.json": [
        Metric(("achieved_sigs_per_s",), higher_is_better=True),
        Metric(("latency_ms", "p95"), higher_is_better=False),
        Metric(("steady_state", "achieved_sigs_per_s"),
               higher_is_better=True, optional=True),
        Metric(("steady_state", "latency_ms", "p50"),
               higher_is_better=False, optional=True),
    ],
    "pool_scaling.json": [
        Metric(("configs", "1", "sigs_per_s"), higher_is_better=True),
        Metric(("configs", "2", "sigs_per_s"), higher_is_better=True),
        Metric(("configs", "4", "sigs_per_s"), higher_is_better=True,
               optional=True),
        Metric(("scaling", "2w_vs_1w"), higher_is_better=True),
        Metric(("scaling", "4w_vs_1w"), higher_is_better=True,
               optional=True),
    ],
    "obs_overhead.json": [
        Metric(("sigs_per_s", "tracing_off"), higher_is_better=True),
        Metric(("sigs_per_s", "tracing_on"), higher_is_better=True),
        # A clean run pins ~0.0, which the `base <= 0` rule skips; the
        # gate only engages once a real overhead has been pinned.
        Metric(("overhead_fraction",), higher_is_better=False,
               optional=True),
    ],
    "wire_efficiency.json": [
        # Bytes moved per signature are deterministic for a fixed
        # message shape; the v3 framing PR's >=25% reduction must hold.
        Metric(("live", "bytes_reduction"), higher_is_better=True),
        Metric(("live", "v3_bytes_per_sig"), higher_is_better=False),
        Metric(("codec", "cpu_speedup"), higher_is_better=True),
        # Median of drift-cancelling paired rounds — the stable form
        # of "v3 spends less CPU per signature than v2".
        Metric(("live", "cpu_saved_s_per_sig"), higher_is_better=True),
    ],
    "cluster_scaling.json": [
        Metric(("configs", "1", "sigs_per_s"), higher_is_better=True),
        Metric(("configs", "2", "sigs_per_s"), higher_is_better=True),
        # 2-node vs single-node throughput at the same latency deadline;
        # skipped (like the pool gate) when the host lacks the cores.
        Metric(("scaling", "2n_vs_1n"), higher_is_better=True),
        # Chaos invariants: the benchmark asserts unresolved == 0, and
        # the gate additionally watches that the kill keeps resolving
        # requests (the `base <= 0` rule skips degenerate pins).
        Metric(("node_kill", "signed"), higher_is_better=True,
               optional=True),
    ],
    "ledger_throughput.json": [
        # The write path: batched seals + checkpoint signing + fsync.
        Metric(("append", "appends_per_s"), higher_is_better=True),
        # The monitor's read path: generate + verify inclusion proofs.
        Metric(("proofs", "proofs_per_s"), higher_is_better=True),
        # The differential audit replay over the on-disk bytes.
        Metric(("audit", "entries_per_s"), higher_is_better=True),
    ],
}


def smoke_mode() -> bool:
    return os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def mode_dir() -> pathlib.Path:
    return RESULTS_DIR / "smoke" if smoke_mode() else RESULTS_DIR


def lookup(record: dict, path: tuple[str, ...]):
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def load_measured(filename: str) -> dict | None:
    path = mode_dir() / filename
    if not path.exists():
        return None
    return json.loads(path.read_text())


def load_pinned(filename: str,
                baseline_dir: pathlib.Path | None) -> dict | None:
    if baseline_dir is not None:
        path = baseline_dir / filename
        return json.loads(path.read_text()) if path.exists() else None
    rel = (mode_dir() / filename).relative_to(REPO_ROOT)
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel.as_posix()}"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


@dataclass(frozen=True)
class Verdict:
    file: str
    metric: str
    pinned: float
    measured: float
    regressed: bool
    detail: str


def _scaling_lanes(metric: Metric) -> int | None:
    """For a ``scaling.<N>w_vs_1w`` / ``scaling.<N>n_vs_1n`` metric, the
    concurrency N (workers or nodes) the ratio claims to scale across."""
    if metric.path[0] != "scaling":
        return None
    head = ""
    for char in metric.path[1]:
        if not char.isdigit():
            break
        head += char
    return int(head) if head else None


def compare_record(filename: str, pinned: dict, measured: dict,
                   tolerance: float) -> list[Verdict]:
    verdicts = []
    for metric in WATCHED[filename]:
        if filename in ("pool_scaling.json", "cluster_scaling.json"):
            # A `<N>w vs 1w` / `<N>n vs 1n` speedup gate is only
            # meaningful when the host can actually run N workers or
            # nodes concurrently; on a single-core CI runner the ratio
            # is ~1.0 by physics, not regression.  The benchmarks
            # record the core count for exactly this decision.
            lanes = _scaling_lanes(metric)
            cores = measured.get("cpu_count")
            if (lanes is not None and isinstance(cores, int)
                    and cores < lanes):
                print(f"  [skipped  ] {filename}: {metric.name} — host "
                      f"has {cores} core(s) < {lanes} lanes; "
                      "scaling gate not meaningful here")
                continue
        base = lookup(pinned, metric.path)
        fresh = lookup(measured, metric.path)
        if base is None or fresh is None:
            if not metric.optional and (base is None) != (fresh is None):
                verdicts.append(Verdict(
                    filename, metric.name, base or 0.0, fresh or 0.0,
                    regressed=True,
                    detail="metric present on only one side"))
            continue
        if base <= 0:
            continue  # a degenerate pin can only be fixed by --regen
        ratio = fresh / base
        if metric.higher_is_better:
            regressed = ratio < 1.0 - tolerance
            direction = "dropped" if regressed else "ok"
        else:
            regressed = ratio > 1.0 + tolerance
            direction = "grew" if regressed else "ok"
        verdicts.append(Verdict(
            filename, metric.name, base, fresh, regressed,
            detail=f"{direction}: pinned {base:g} -> measured {fresh:g} "
                   f"({ratio:.2f}x, tolerance ±{tolerance:.0%})"))
    return verdicts


def run_gate(tolerance: float,
             baseline_dir: pathlib.Path | None) -> tuple[int, list[Verdict]]:
    verdicts: list[Verdict] = []
    compared_any = False
    for filename in WATCHED:
        measured = load_measured(filename)
        if measured is None:
            # Outside CI, print the copy-pasteable invocation.  This is
            # derived from BASELINE_SOURCES and the pyproject pytest
            # config (pythonpath = ["src"]), so it never drifts into a
            # stale `PYTHONPATH=...` hint again.
            print(f"{filename}: no fresh measurement in {mode_dir()} — "
                  f"run its benchmark first:\n"
                  f"    {verify_command(filename)}", file=sys.stderr)
            return 2, verdicts
        pinned = load_pinned(filename, baseline_dir)
        if pinned is None:
            print(f"{filename}: no pinned baseline (first run?) — skipped")
            continue
        if bool(pinned.get("smoke")) != bool(measured.get("smoke")):
            print(f"{filename}: pinned/measured smoke modes differ — "
                  "skipped (regen the pinned baseline for this mode)")
            continue
        if pinned.get("snapshot_schema") != measured.get("snapshot_schema"):
            # Shape drift, not perf drift: the service snapshot the
            # benchmark read changed versions, so the recorded sections
            # may not mean the same thing.  Surface it loudly and skip
            # rather than comparing apples to renamed apples.
            print(f"{filename}: snapshot_schema drifted "
                  f"(pinned {pinned.get('snapshot_schema')} -> measured "
                  f"{measured.get('snapshot_schema')}) — skipped; regen "
                  "the pinned baseline after reviewing the shape change")
            continue
        compared_any = True
        verdicts.extend(compare_record(filename, pinned, measured,
                                       tolerance))
    regressions = [v for v in verdicts if v.regressed]
    for verdict in verdicts:
        marker = "REGRESSED" if verdict.regressed else "ok"
        print(f"  [{marker:9s}] {verdict.file}: {verdict.metric} — "
              f"{verdict.detail}")
    if regressions:
        names = ", ".join(f"{v.file}:{v.metric}" for v in regressions)
        print(f"perf gate: FAILED — regressed beyond tolerance: {names}",
              file=sys.stderr)
        return 1, verdicts
    if not compared_any:
        print("perf gate: nothing compared (no pinned baselines) — "
              "treating as misconfiguration", file=sys.stderr)
        return 2, verdicts
    print("perf gate: ok — every watched metric within tolerance")
    return 0, verdicts


def run_self_check(tolerance: float,
                   baseline_dir: pathlib.Path | None) -> int:
    """Prove the gate fires: perturb each file's first comparable metric
    past tolerance in the regressing direction and require a failure."""
    missed = []
    proved = 0
    for filename, metrics in WATCHED.items():
        measured = load_measured(filename)
        pinned = load_pinned(filename, baseline_dir)
        if measured is None or pinned is None:
            print(f"self-check: {filename} unavailable — skipped")
            continue
        if bool(pinned.get("smoke")) != bool(measured.get("smoke")):
            print(f"self-check: {filename} mode mismatch — skipped")
            continue
        target = next((m for m in metrics
                       if lookup(pinned, m.path) not in (None, 0)
                       and lookup(measured, m.path) is not None), None)
        if target is None:
            print(f"self-check: {filename} has no comparable metric — "
                  "skipped")
            continue
        doctored = json.loads(json.dumps(measured))
        node = doctored
        for key in target.path[:-1]:
            node = node[key]
        factor = ((1.0 - 2.0 * tolerance) if target.higher_is_better
                  else (1.0 + 2.0 * tolerance))
        node[target.path[-1]] = lookup(measured, target.path) * max(
            factor, 0.01)
        verdicts = compare_record(filename, pinned, doctored, tolerance)
        if any(v.regressed and v.metric == target.name for v in verdicts):
            proved += 1
            print(f"self-check: {filename}:{target.name} — injected "
                  "regression caught")
        else:
            missed.append(f"{filename}:{target.name}")
    if missed:
        print(f"self-check: FAILED — gate did not fire for: "
              f"{', '.join(missed)}", file=sys.stderr)
        return 1
    if proved == 0:
        # Skipping everything must not read as a passing alarm test.
        print("self-check: nothing injected (no comparable baselines) — "
              "treating as misconfiguration", file=sys.stderr)
        return 2
    print("self-check: ok — the gate fires on injected regressions")
    return 0


def regen_baselines() -> int:
    """Re-run the watched benchmarks so this mode's pinned files refresh."""
    files = [str(BENCH_DIR / source)
             for source in BASELINE_SOURCES.values()]
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-s", *files],
        cwd=REPO_ROOT)
    if proc.returncode != 0:
        print("regen: benchmark run failed; baselines not refreshed",
              file=sys.stderr)
        return 2
    print(f"regen: refreshed {', '.join(BASELINE_SOURCES)} under "
          f"{mode_dir()} — review `git diff benchmarks/results` and "
          "commit to pin")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff measured perf baselines against the pinned ones")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression per metric "
                             "(default 0.25 = ±25%%)")
    parser.add_argument("--baseline-dir", default=None,
                        help="diff against this directory instead of the "
                             "committed files at git HEAD")
    parser.add_argument("--self-check", action="store_true",
                        help="inject a fake regression and require the "
                             "gate to catch it")
    parser.add_argument("--regen-baselines", action="store_true",
                        help="re-run the watched benchmarks to refresh "
                             "this mode's pinned files")
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        print(f"--tolerance must be in (0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2
    baseline_dir = (pathlib.Path(args.baseline_dir)
                    if args.baseline_dir else None)
    if args.regen_baselines:
        return regen_baselines()
    if args.self_check:
        return run_self_check(args.tolerance, baseline_dir)
    code, _ = run_gate(args.tolerance, baseline_dir)
    return code


if __name__ == "__main__":
    sys.exit(main())
