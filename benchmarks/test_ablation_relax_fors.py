"""Ablation: Relax-FORS on/off for SPHINCS+-256f (DESIGN.md ablation #1).

The paper proposes Relax-FORS because standard tuning at 256f fits only
two trees with F=1.  This bench quantifies what the relax buffer buys.
"""

from repro.analysis import format_table
from repro.core.fusion import plan_fors
from repro.core.kernels import OptimizationFlags, build_fors_plan
from repro.core.pipeline import kernel_report
from repro.gpusim.compiler import Branch, CompilerModel
from repro.params import get_params

SMEM = 48 * 1024


def _fors_kops(rtx4090, engine, relax):
    params = get_params("256f")
    fors_plan = plan_fors(
        params, SMEM, force_relax=relax,
        hard_limit=rtx4090.shared_mem_per_block_optin,
    )
    plan = build_fors_plan(
        params, rtx4090, CompilerModel(), OptimizationFlags.full(),
        Branch.PTX, fors_plan=fors_plan,
    )
    return kernel_report(plan, engine), fors_plan


def test_ablation_relax_fors(rtx4090, engine, emit, benchmark):
    (with_relax, plan_on), (without, plan_off) = benchmark(
        lambda: (_fors_kops(rtx4090, engine, True),
                 _fors_kops(rtx4090, engine, False))
    )

    emit("ablation_relax_fors", format_table(
        ["config", "KOPS", "trees in flight", "F", "sync points",
         "smem KB", "warp occ %"],
        [
            ["Relax-FORS", round(with_relax.kops, 1),
             plan_on.trees_in_flight, plan_on.fusion_f,
             plan_on.sync_points, round(plan_on.smem_per_block / 1024, 1),
             round(with_relax.profile.warp_occupancy_pct, 1)],
            ["standard", round(without.kops, 1),
             plan_off.trees_in_flight, plan_off.fusion_f,
             plan_off.sync_points, round(plan_off.smem_per_block / 1024, 1),
             round(without.profile.warp_occupancy_pct, 1)],
        ],
        title="Ablation — Relax-FORS vs standard fusion, FORS_Sign 256f",
    ))

    # Relax-FORS must help (the paper's +FS step at 256f is 1.38x).
    assert with_relax.kops > without.kops
    assert plan_on.sync_points < plan_off.sync_points
    assert plan_on.trees_in_flight > plan_off.trees_in_flight
