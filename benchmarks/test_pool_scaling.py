"""Worker-pool scaling — the multi-core execution tier's perf baseline.

Not a paper table: for pools of 1 / 2 / 4 workers, a fixed multi-tenant
workload (several keys, several batches each, submitted all at once so
the pool can overlap them across workers) is signed and the achieved
sig/s plus per-batch p95 latency are recorded as ``pool_scaling.json``
next to the other baselines.  On a multi-core box throughput should
scale near-linearly with the pool size — that is the whole argument of
the worker tier — while on a single core the configs tie and the record
simply pins that machine's shape.

Byte-identity of the pooled path is asserted against the scalar
reference here too, so a perf baseline can never be produced by a pool
that signs wrong.  Set ``REPRO_SMOKE=1`` for the tiny CI configuration.
"""

import json
import os

from conftest import SMOKE, json_baseline_dir

from repro.runtime import WorkerPool, get_backend
from repro.service import derive_seed, percentile
from repro.sphincs.signer import Sphincs

WORKER_CONFIGS = (1, 2, 4)
TENANTS = 2 if SMOKE else 4
BATCHES_PER_TENANT = 2
BATCH_SIZE = 2 if SMOKE else 4
PARAMS = "128f"


def _workload():
    """(tenant label, keys, messages) per batch — identical every run."""
    scheme = Sphincs(PARAMS, deterministic=True)
    work = []
    for tenant in range(TENANTS):
        keys = scheme.keygen(seed=derive_seed(f"pool-bench-{tenant}", 16))
        for batch in range(BATCHES_PER_TENANT):
            messages = [f"t{tenant}/b{batch}/m{i}".encode()
                        for i in range(BATCH_SIZE)]
            work.append((f"tenant-{tenant}", keys, messages))
    return work


def test_pool_scaling_1_2_4_workers(emit):
    import time

    work = _workload()
    scalar = get_backend("scalar", PARAMS, deterministic=True)
    expected = {index: scalar.sign_batch(messages, keys).signatures
                for index, (_, keys, messages) in enumerate(work)}

    configs = {}
    for workers in WORKER_CONFIGS:
        with WorkerPool(workers=workers, deterministic=True) as pool:
            # Warm every tenant key on its shard owner first, so the
            # measurement sees steady-state workers, not cold caches.
            for tenant, keys, _ in work:
                pool.warm(keys, PARAMS, shard_key=f"{tenant}/default")
            pool.ping(timeout=10.0)

            started = time.perf_counter()
            jobs = [
                (index, time.monotonic(),
                 pool.submit(messages, keys, PARAMS,
                             shard_key=f"{tenant}/default"))
                for index, (tenant, keys, messages) in enumerate(work)
            ]
            batch_ms = []
            signed = 0
            for index, submitted_at, job_id in jobs:
                outcome = pool.result(job_id)
                # done_at is stamped by the collector, so this is true
                # submit->completion latency per batch, independent of
                # the order results are picked up in here.
                batch_ms.append((outcome.done_at - submitted_at) * 1000.0)
                signed += len(outcome.signatures)
                assert outcome.signatures == expected[index], (
                    f"pooled signatures diverged from the scalar "
                    f"reference at {workers} workers, batch {index}"
                )
            elapsed = time.perf_counter() - started
        configs[str(workers)] = {
            "sigs_per_s": round(signed / elapsed, 4),
            "elapsed_s": round(elapsed, 4),
            "p95_batch_ms": round(percentile(batch_ms, 95), 3),
            "signed": signed,
        }

    base = configs[str(WORKER_CONFIGS[0])]["sigs_per_s"]
    scaling = {
        f"{workers}w_vs_1w": round(
            configs[str(workers)]["sigs_per_s"] / base, 4)
        for workers in WORKER_CONFIGS[1:]
    }

    record = {
        "params": f"SPHINCS+-{PARAMS}",
        "smoke": SMOKE,
        "inner_backend": "vectorized",
        "cpu_count": os.cpu_count(),
        "tenants": TENANTS,
        "batches": len(work),
        "batch_size": BATCH_SIZE,
        "configs": configs,
        "scaling": scaling,
    }
    (json_baseline_dir() / "pool_scaling.json").write_text(
        json.dumps(record, indent=2) + "\n")

    # The hard scaling claim only holds where the cores exist; a 1-core
    # CI box legitimately ties.  The perf gate compares like-for-like
    # against the pinned baseline, so a real regression still fails.
    if (os.cpu_count() or 1) >= 4:
        assert scaling["4w_vs_1w"] >= 1.3, (
            f"4-worker pool should beat 1 worker on a "
            f"{os.cpu_count()}-core box, got {scaling['4w_vs_1w']:.2f}x"
        )

    from repro.analysis import format_table

    emit("pool_scaling", format_table(
        ["workers", "signed", "wall s", "sig/s", "p95 batch ms", "vs 1w"],
        [[workers, configs[str(workers)]["signed"],
          configs[str(workers)]["elapsed_s"],
          configs[str(workers)]["sigs_per_s"],
          configs[str(workers)]["p95_batch_ms"],
          f"{configs[str(workers)]['sigs_per_s'] / base:.2f}x"]
         for workers in WORKER_CONFIGS],
        title=(f"Worker-pool scaling, {len(work)} batches x "
               f"{BATCH_SIZE} msgs, {TENANTS} tenants, "
               f"{os.cpu_count()} CPU core(s)"),
    ))
