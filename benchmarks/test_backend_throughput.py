"""Scalar vs vectorized backend throughput — the runtime's perf baseline.

Not a paper table: honest wall-clock numbers for the two CPU backends on
the same 64-message batch, recorded as JSON next to the other results so
future PRs (sharding, async, new devices) have a baseline to beat.

Two acceptance bars:

* the vectorized backend must be >= 1.5x scalar sig/s cold (measured
  ~3x: address templates + shared midstates + the layer cache's
  first-pass subtree reuse), and
* the *warm* pass — the same batch signed again on the same backend,
  so every hypertree subtree and upper-layer WOTS link signature comes
  out of the per-key layer cache — must be >= 2x the cold vectorized
  pass (the cache-effectiveness gate; measured higher).
"""

import json

from conftest import SMOKE, json_baseline_dir

from repro.runtime import get_backend

BATCH = 16 if SMOKE else 64
SEED = bytes(48)


def test_scalar_vs_vectorized_64_batch(emit):
    messages = [f"throughput message {i}".encode() for i in range(BATCH)]

    scalar = get_backend("scalar", "128f", deterministic=True)
    vectorized = get_backend("vectorized", "128f", deterministic=True)
    keys = scalar.keygen(seed=SEED)

    result_scalar = scalar.sign_batch(messages, keys)
    result_vector = vectorized.sign_batch(messages, keys)
    # Same instance, same batch: deterministic mode repeats idx_tree per
    # message, so the second pass serves subtrees *and* link signatures
    # from the warm layer cache — the steady-state number a service with
    # repeat traffic actually sees.
    result_warm = vectorized.sign_batch(messages, keys)

    # Same bytes, different speed — the whole point of the backend split.
    assert result_scalar.signatures == result_vector.signatures
    assert result_scalar.signatures == result_warm.signatures

    ratio = result_vector.sigs_per_s / result_scalar.sigs_per_s
    assert ratio >= 1.5, (
        f"vectorized backend must be >= 1.5x scalar on a {BATCH}-message "
        f"batch, measured {ratio:.2f}x"
    )
    warm_ratio = result_warm.sigs_per_s / result_vector.sigs_per_s
    assert warm_ratio >= 2.0, (
        f"warm layer-cache pass must be >= 2x the cold vectorized pass "
        f"on a {BATCH}-message batch, measured {warm_ratio:.2f}x"
    )

    record = {
        "params": "SPHINCS+-128f",
        "smoke": SMOKE,
        "batch": BATCH,
        "scalar": {
            "elapsed_s": round(result_scalar.elapsed_s, 4),
            "sigs_per_s": round(result_scalar.sigs_per_s, 4),
            "stage_seconds": {k: round(v, 4) for k, v
                              in result_scalar.stage_seconds.items()},
        },
        "vectorized": {
            "elapsed_s": round(result_vector.elapsed_s, 4),
            "sigs_per_s": round(result_vector.sigs_per_s, 4),
            "stage_seconds": {k: round(v, 4) for k, v
                              in result_vector.stage_seconds.items()},
            "subtree_cache": result_vector.cache_stats,
        },
        "warm": {
            "elapsed_s": round(result_warm.elapsed_s, 4),
            "sigs_per_s": round(result_warm.sigs_per_s, 4),
            "speedup_vs_cold": round(warm_ratio, 4),
            "cache": result_warm.cache_stats,
        },
        "speedup": round(ratio, 4),
    }
    (json_baseline_dir() / "backend_throughput.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("backend_throughput", format_table(
        ["backend", "batch", "wall s", "sig/s", "speedup"],
        [
            ["scalar", BATCH, round(result_scalar.elapsed_s, 2),
             round(result_scalar.sigs_per_s, 2), "1.00x"],
            ["vectorized (cold)", BATCH, round(result_vector.elapsed_s, 2),
             round(result_vector.sigs_per_s, 2), f"{ratio:.2f}x"],
            ["vectorized (warm)", BATCH, round(result_warm.elapsed_s, 2),
             round(result_warm.sigs_per_s, 2),
             f"{warm_ratio * ratio:.2f}x"],
        ],
        title=f"Backend throughput, {BATCH}-message batch, SPHINCS+-128f",
    ))
