"""Scalar vs vectorized backend throughput — the runtime's perf baseline.

Not a paper table: honest wall-clock numbers for the two CPU backends on
the same 64-message batch, recorded as JSON next to the other results so
future PRs (sharding, async, new devices) have a baseline to beat.

The acceptance bar for the vectorized backend is >= 1.5x scalar sig/s;
measured speedups are ~3x (address templates + shared midstates + the
cross-batch subtree memo), so the assertion has generous headroom.
"""

import json

from conftest import SMOKE, json_baseline_dir

from repro.runtime import get_backend

BATCH = 16 if SMOKE else 64
SEED = bytes(48)


def test_scalar_vs_vectorized_64_batch(emit):
    messages = [f"throughput message {i}".encode() for i in range(BATCH)]

    scalar = get_backend("scalar", "128f", deterministic=True)
    vectorized = get_backend("vectorized", "128f", deterministic=True)
    keys = scalar.keygen(seed=SEED)

    result_scalar = scalar.sign_batch(messages, keys)
    result_vector = vectorized.sign_batch(messages, keys)

    # Same bytes, different speed — the whole point of the backend split.
    assert result_scalar.signatures == result_vector.signatures

    ratio = result_vector.sigs_per_s / result_scalar.sigs_per_s
    assert ratio >= 1.5, (
        f"vectorized backend must be >= 1.5x scalar on a {BATCH}-message "
        f"batch, measured {ratio:.2f}x"
    )

    record = {
        "params": "SPHINCS+-128f",
        "smoke": SMOKE,
        "batch": BATCH,
        "scalar": {
            "elapsed_s": round(result_scalar.elapsed_s, 4),
            "sigs_per_s": round(result_scalar.sigs_per_s, 4),
            "stage_seconds": {k: round(v, 4) for k, v
                              in result_scalar.stage_seconds.items()},
        },
        "vectorized": {
            "elapsed_s": round(result_vector.elapsed_s, 4),
            "sigs_per_s": round(result_vector.sigs_per_s, 4),
            "stage_seconds": {k: round(v, 4) for k, v
                              in result_vector.stage_seconds.items()},
            "subtree_cache": result_vector.cache_stats,
        },
        "speedup": round(ratio, 4),
    }
    (json_baseline_dir() / "backend_throughput.json").write_text(
        json.dumps(record, indent=2) + "\n")

    from repro.analysis import format_table

    emit("backend_throughput", format_table(
        ["backend", "batch", "wall s", "sig/s", "speedup"],
        [
            ["scalar", BATCH, round(result_scalar.elapsed_s, 2),
             round(result_scalar.sigs_per_s, 2), "1.00x"],
            ["vectorized", BATCH, round(result_vector.elapsed_s, 2),
             round(result_vector.sigs_per_s, 2), f"{ratio:.2f}x"],
        ],
        title=f"Backend throughput, {BATCH}-message batch, SPHINCS+-128f",
    ))
