"""Ablation: Tree Tuning's tie-break order (DESIGN.md ablation #2).

Algorithm 1 prioritizes fewest synchronization points, then utilization.
This bench compares the chosen configuration against the best
utilization-first candidate to confirm the sync-first heuristic pays.
"""

from repro.analysis import format_table
from repro.core.kernels import OptimizationFlags, build_fors_plan
from repro.core.fusion import ForsPlan
from repro.core.padding import padding_rule
from repro.core.pipeline import kernel_report
from repro.core.tree_tuning import tree_tuning_search
from repro.gpusim.compiler import Branch, CompilerModel
from repro.params import get_params

SMEM = 48 * 1024


def _kops_for_candidate(params, cand, rtx4090, engine, relax):
    fors_plan = ForsPlan(
        params=params,
        threads_per_block=cand.t_set,
        n_tree=cand.n_tree,
        fusion_f=cand.f,
        relax=relax,
        pad=padding_rule(params.n),
        smem_bytes=cand.smem_bytes,
        sync_points=cand.sync_points,
    )
    plan = build_fors_plan(
        params, rtx4090, CompilerModel(), OptimizationFlags.full(),
        Branch.PTX, fors_plan=fors_plan,
    )
    return kernel_report(plan, engine).kops


def test_ablation_sync_priority(rtx4090, engine, emit, benchmark):
    rows = []
    for alias in ("128f", "192f"):
        params = get_params(alias)
        result = tree_tuning_search(params, SMEM)

        sync_first = result.best
        util_first = max(
            result.candidates, key=lambda c: (c.u_t, c.u_s, -c.sync_points)
        )
        kops_sync = benchmark.pedantic(
            _kops_for_candidate,
            args=(params, sync_first, rtx4090, engine, False),
            iterations=1, rounds=1,
        ) if alias == "128f" else _kops_for_candidate(
            params, sync_first, rtx4090, engine, False)
        kops_util = _kops_for_candidate(params, util_first, rtx4090, engine,
                                        False)
        rows.append([alias, "sync-first (paper)",
                     f"({sync_first.t_set},{sync_first.f})",
                     sync_first.sync_points, round(kops_sync, 1)])
        rows.append([alias, "utilization-first",
                     f"({util_first.t_set},{util_first.f})",
                     util_first.sync_points, round(kops_util, 1)])
        # The paper's heuristic should not lose to utilization-first.
        assert kops_sync >= kops_util * 0.98, f"{alias}"

    emit("ablation_sync_priority", format_table(
        ["set", "tie-break", "(T_set, F)", "sync points", "FORS KOPS"],
        rows,
        title="Ablation — Tree Tuning tie-break: fewest syncs vs highest "
              "utilization",
    ))
