"""Table III: baseline kernel profile for 128f — warp occupancy,
theoretical occupancy, registers per thread."""

from repro.analysis import PAPER, format_table
from repro.core.baseline import baseline_plans
from repro.core.pipeline import kernel_report
from repro.params import get_params


def test_table3_occupancy(rtx4090, engine, emit, benchmark):
    plans = baseline_plans(get_params("128f"), rtx4090)
    reports = benchmark(
        lambda: {k: kernel_report(p, engine) for k, p in plans.items()}
    )
    paper = PAPER["table3_occupancy_128f"]

    rows = []
    for kernel in ("FORS_Sign", "TREE_Sign", "WOTS_Sign"):
        prof = reports[kernel].profile
        rows.append([
            kernel,
            paper[kernel]["warp_occ"], round(prof.warp_occupancy_pct, 2),
            paper[kernel]["theoretical_occ"],
            round(prof.theoretical_occupancy_pct, 2),
            paper[kernel]["regs"], prof.registers_per_thread,
        ])
    emit("table3_occupancy", format_table(
        ["kernel", "warp occ % (paper)", "warp occ % (model)",
         "theoretical % (paper)", "theoretical % (model)",
         "regs (paper)", "regs (model)"],
        rows,
        title="Table III — baseline kernel profile, SPHINCS+-128f on RTX 4090",
    ))

    # Registers are anchored exactly; occupancies must preserve ordering.
    for kernel in paper:
        assert reports[kernel].profile.registers_per_thread == paper[kernel]["regs"]
    model_theory = {
        k: reports[k].profile.theoretical_occupancy_pct for k in paper
    }
    assert model_theory["FORS_Sign"] > model_theory["WOTS_Sign"] > model_theory["TREE_Sign"]
